"""Tests for the evaluation metrics layer."""

from __future__ import annotations

import pytest

from repro.baselines import NaivePolicy, OraclePolicy
from repro.evaluation import (
    aggregate_energy_saving,
    energy_saving,
    measure_outcome,
    radio_time_saving,
    run_policy_over_days,
)


class TestMeasureOutcome:
    def test_fields_populated(self, test_day, wcdma):
        outcome = NaivePolicy().execute_day(test_day)
        metrics = measure_outcome(outcome, wcdma, test_day)
        assert metrics.policy == "baseline"
        assert metrics.energy_j > 0
        assert metrics.radio_on_s > metrics.transfer_s
        assert metrics.bandwidth.avg_down_bps > 0

    def test_payload_validated(self, test_day, wcdma):
        outcome = NaivePolicy().execute_day(test_day)
        outcome.activities = outcome.activities[:-1]
        with pytest.raises(ValueError, match="payload"):
            measure_outcome(outcome, wcdma, test_day)

    def test_ratios(self, test_day, wcdma):
        outcome = NaivePolicy().execute_day(test_day)
        outcome.interrupts = 2
        metrics = measure_outcome(outcome, wcdma, test_day)
        assert metrics.interrupt_ratio == pytest.approx(
            2 / len(test_day.usages)
        )
        assert metrics.affected_ratio == 0.0


class TestAggregation:
    def test_run_policy_over_days(self, history_and_days, wcdma):
        _, days = history_and_days
        metrics = run_policy_over_days(NaivePolicy(), days, wcdma)
        assert len(metrics) == len(days)

    def test_energy_saving_sign(self, test_day, wcdma):
        base = measure_outcome(NaivePolicy().execute_day(test_day), wcdma, test_day)
        oracle = measure_outcome(OraclePolicy().execute_day(test_day), wcdma, test_day)
        assert energy_saving(oracle, base) > 0.3
        assert energy_saving(base, base) == 0.0

    def test_radio_time_saving(self, test_day, wcdma):
        base = measure_outcome(NaivePolicy().execute_day(test_day), wcdma, test_day)
        oracle = measure_outcome(OraclePolicy().execute_day(test_day), wcdma, test_day)
        assert radio_time_saving(oracle, base) > 0.3

    def test_aggregate_over_window(self, history_and_days, wcdma):
        _, days = history_and_days
        base = run_policy_over_days(NaivePolicy(), days, wcdma)
        oracle = run_policy_over_days(OraclePolicy(), days, wcdma)
        saving = aggregate_energy_saving(oracle, base)
        assert 0.3 < saving < 0.95

    def test_zero_baseline_guard(self, test_day, wcdma):
        base = measure_outcome(NaivePolicy().execute_day(test_day), wcdma, test_day)
        zero = base.__class__(
            policy="z",
            energy_j=0.0,
            radio_on_s=0.0,
            transfer_s=0.0,
            bandwidth=base.bandwidth,
            interrupts=0,
            user_interactions=0,
            affected_user_activities=0,
            deferred=0,
        )
        assert energy_saving(base, zero) == 0.0
        assert radio_time_saving(base, zero) == 0.0
        assert aggregate_energy_saving([base], [zero]) == 0.0
        assert zero.interrupt_ratio == 0.0
