"""Tests for the plain-text reporting layer."""

from __future__ import annotations

import pytest

from repro.evaluation import (
    approximation_ratio,
    fig1a,
    fig1b,
    fig2,
    fig3,
    fig4,
    fig5,
    fig8,
    fig9,
    fig10a,
    fig10b,
    user_experience,
)
from repro.evaluation import reporting


class TestFormatters:
    def test_fig1a(self):
        text = reporting.format_fig1a(fig1a(n_days=3))
        assert "Fig 1(a)" in text
        assert "paper: 0.410" in text
        assert "user8" in text

    def test_fig1b(self):
        text = reporting.format_fig1b(fig1b(n_days=3))
        assert "p90 screen-off" in text and "p90 screen-on" in text

    def test_fig2(self):
        text = reporting.format_fig2(fig2(n_days=3))
        assert "utilization ratio" in text
        assert "paper: 0.451" in text

    def test_fig3_matrix_rendered(self):
        text = reporting.format_fig3(fig3(n_days=3))
        assert text.count("\n") >= 9  # header + 8 rows + average

    def test_fig4(self):
        text = reporting.format_fig4(fig4(n_days=8))
        assert "user4" in text

    def test_fig5(self):
        text = reporting.format_fig5(fig5(n_days=3))
        assert "com.tencent.mm" in text
        assert "active apps" in text

    def test_fig8(self):
        result = fig8(delays_s=(0.0, 60.0))
        text = reporting.format_fig8(result)
        assert "delay_s" in text and "affected" in text
        assert "100s gaps" in text

    def test_fig9(self):
        text = reporting.format_fig9(fig9(batch_sizes=(0, 5)))
        assert "batch" in text

    def test_fig10a(self):
        text = reporting.format_fig10a(fig10a(max_wakeups=6))
        assert "T=30s" in text

    def test_fig10b(self):
        text = reporting.format_fig10b(fig10b())
        assert "exponential" in text

    def test_user_experience(self):
        text = reporting.format_user_experience(user_experience())
        assert "interrupt ratio" in text

    def test_approximation(self):
        text = reporting.format_approximation(approximation_ratio(trials=5))
        assert "(1-eps)/2" in text

    def test_paper_reference_table_complete(self):
        assert reporting.PAPER["fig7_netmaster"] == pytest.approx(0.778)
        assert reporting.PAPER["fig7_within5"] == pytest.approx(0.816)
        assert reporting.PAPER["fig10c_crossover"] == pytest.approx(0.37)
