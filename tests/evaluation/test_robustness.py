"""Tests for the robustness sweep experiment."""

from __future__ import annotations

import pytest

from repro.baselines import NetMasterPolicy
from repro.evaluation import measure_outcome, robustness, split_history
from repro.evaluation.reporting import format_robustness
from repro.radio import wcdma_model
from repro.traces import generate_volunteers


@pytest.fixture(scope="module")
def result():
    return robustness(seed=43, n_days=12, rates=(0.0, 0.1, 0.3))


class TestRobustness:
    def test_rates_sorted_and_points_aligned(self, result):
        assert result.rates == [0.0, 0.1, 0.3]
        assert [p.rate for p in result.points] == result.rates
        assert result.policies == ["baseline", "netmaster", "delay-batch-60s"]

    def test_rate_zero_is_fault_free(self, result):
        clean = result.points[0]
        assert clean.energy_saving["baseline"] == pytest.approx(0.0)
        assert all(v == 0 for v in clean.retries.values())
        assert all(v == 0 for v in clean.forced_deliveries.values())
        assert all(v == 0.0 for v in clean.added_delay_max_s.values())

    def test_rate_zero_matches_stock_pipeline_exactly(self, result):
        # Recompute the netmaster energy with the plain (no-faults)
        # pipeline: the rate-0 sweep point must match bit-for-bit.
        model = wcdma_model()
        total = 0.0
        for trace in generate_volunteers(12, seed=43):
            history, test_days = split_history(trace, 10)
            policy = NetMasterPolicy(history)
            for day in test_days:
                outcome = policy.execute_day(day)
                total += measure_outcome(outcome, model, day).energy_j
        assert result.points[0].energy_j["netmaster"] == total

    def test_savings_monotone_in_rate(self, result):
        for policy in result.policies:
            series = result.series(policy)
            assert all(a >= b - 1e-12 for a, b in zip(series, series[1:]))

    def test_faults_trigger_retries(self, result):
        assert result.points[-1].retries["netmaster"] > 0
        assert result.points[-1].failed_attempts["netmaster"] > 0

    def test_delay_bound_never_violated(self, result):
        assert all(p.delay_violations == 0 for p in result.points)
        for p in result.points:
            for policy in result.policies:
                assert p.added_delay_max_s[policy] <= result.max_delay_s + 1e-6

    def test_netmaster_still_wins_under_faults(self, result):
        worst = result.points[-1]
        assert worst.energy_saving["netmaster"] > worst.energy_saving["delay-batch-60s"]
        assert worst.energy_saving["netmaster"] > 0.0

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            robustness(rates=(0.0, 1.2))

    def test_formatter(self, result):
        text = format_robustness(result)
        assert "Robustness" in text
        assert "rate 0.30" in text
        assert "delay-bound violations" in text
