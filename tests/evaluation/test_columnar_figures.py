"""Figure-level bit-identity: ``columnar=True`` changes nothing.

The columnar lane-kernel front-end (:mod:`repro.core.batch`) promises
byte-identical figure outputs; these tests pin that contract at the
experiment level with the documented ``--quick`` parameter sets, which
exercise every code path the full runs do (including the NetMaster
knapsack path — anything shorter than 7 history days degrades to
duty-cycle-only scheduling).
"""

from __future__ import annotations

from repro.evaluation.experiments import fig7, fig8, fig9, fig10c

# The ``--quick`` overrides from repro.__main__, restated here so a CLI
# tweak cannot silently shrink this suite below the knapsack threshold.
QUICK = {"n_days": 9, "n_history_days": 7}


class TestColumnarFigureEquality:
    def test_fig7_columnar_equals_per_lane(self):
        assert fig7(**QUICK, columnar=True) == fig7(**QUICK)

    def test_fig8_columnar_equals_per_lane(self):
        kw = {
            "n_days": 7,
            "n_history_days": 5,
            "delays_s": (0.0, 60.0, 600.0),
        }
        assert fig8(**kw, columnar=True) == fig8(**kw)

    def test_fig9_columnar_equals_per_lane(self):
        kw = {"n_days": 7, "n_history_days": 5, "batch_sizes": (0, 1, 3)}
        assert fig9(**kw, columnar=True) == fig9(**kw)

    def test_fig10c_columnar_equals_per_lane(self):
        kw = {**QUICK, "thresholds": (0.0, 0.2, 0.4)}
        assert fig10c(**kw, columnar=True) == fig10c(**kw)

    def test_fig7_columnar_parallel_equals_serial(self):
        # jobs>1 only re-orders task submission, never results; columnar
        # pricing happens after the pool joins, so the three variants
        # must agree bit-for-bit.
        assert fig7(**QUICK, columnar=True, jobs=2) == fig7(**QUICK)
