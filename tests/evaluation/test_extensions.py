"""Tests for the extension experiments (beyond the paper)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import (
    channel_extension,
    cohort_scale,
    hidden_impact,
    learning_curve,
    random_profile,
)


class TestChannelExtension:
    def test_runs_and_improves(self):
        result = channel_extension()
        assert result.n_batches > 0
        assert result.energy_multiplier_gain >= 0.0
        assert result.rate_gain >= 1.0


class TestHiddenImpact:
    @pytest.fixture(scope="class")
    def result(self):
        return hidden_impact()

    def test_distribution_ordered(self, result):
        assert 0.0 <= result.p50_delay_s <= result.p95_delay_s <= result.max_delay_s

    def test_most_background_traffic_is_deferred(self, result):
        assert result.deferred_fraction > 0.5

    def test_median_delay_bounded_by_duty_cycle(self, result):
        """Half of deferrals resolve within the first few backoff rounds
        or the next active slot — well under two hours."""
        assert result.p50_delay_s < 7200.0


class TestRandomProfile:
    def test_valid_profile(self):
        rng = np.random.default_rng(0)
        profile = random_profile("x", rng)
        assert profile.weekday_intensity.shape == (24,)
        assert profile.expected_sessions_per_day() > 10.0

    def test_distinct_draws(self):
        rng = np.random.default_rng(0)
        a, b = random_profile("a", rng), random_profile("b", rng)
        assert not np.allclose(a.weekday_intensity, b.weekday_intensity)

    def test_generates_traces(self):
        from repro.traces import TraceGenerator

        rng = np.random.default_rng(1)
        profile = random_profile("r", rng)
        trace = TraceGenerator(profile, rng).generate(2)
        assert trace.activities


class TestCohortScale:
    def test_savings_consistent_across_personas(self):
        result = cohort_scale(n_users=6, n_days=12, n_history_days=9)
        assert result.n_users == 6
        assert result.min_saving > 0.4
        assert result.max_saving < 0.9
        assert result.mean_saving == pytest.approx(np.mean(result.savings))


class TestLearningCurve:
    def test_accuracy_converges(self):
        result = learning_curve(history_lengths=(2, 7, 12))
        assert len(result.accuracy) == 3
        # A week of history predicts much better than two days.
        assert result.accuracy[1] > result.accuracy[0]
        assert all(0.0 <= a <= 1.0 for a in result.accuracy)
