"""Shape tests for every paper experiment (Figs. 1-10, §VI-B, Lemma IV.1).

These assert the *qualitative* results the paper reports: who wins, the
rough factors, where curves saturate or cross.  Exact paper numbers are
recorded in EXPERIMENTS.md; the tolerances here are deliberately loose so
the suite stays robust to seed changes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import (
    approximation_ratio,
    fig1a,
    fig1b,
    fig2,
    fig3,
    fig4,
    fig5,
    fig7,
    fig8,
    fig9,
    fig10a,
    fig10b,
    fig10c,
    interactions_in_short_gaps,
    split_history,
    user_experience,
)


class TestMotivationFigures:
    def test_fig1a_screen_off_share(self):
        result = fig1a(n_days=7)
        assert len(result.off_fractions) == 8
        assert 0.3 < result.average_off_fraction < 0.55  # paper: 0.4098

    def test_fig1b_rate_percentiles(self):
        result = fig1b(n_days=7)
        assert result.p90_off_kbps < 1.5  # paper: < 1 kBps
        assert result.p90_on_kbps < 6.0  # paper: < 5 kBps
        assert result.p90_off_kbps < result.p90_on_kbps
        assert np.all(np.diff(result.cdf_screen_on) >= 0)

    def test_fig2_utilization(self):
        result = fig2(n_days=7)
        assert 0.3 < result.average_utilization < 0.6  # paper: 0.4514
        for total, used in zip(result.avg_session_s, result.avg_utilized_s):
            assert 0 < used < total

    def test_fig3_cross_user_low(self):
        result = fig3(n_days=7)
        assert result.matrix.shape == (8, 8)
        assert result.average < 0.35  # paper: 0.1353

    def test_fig4_intra_user_high(self):
        result = fig4(n_days=14)
        assert result.matrix.shape == (8, 8)
        assert result.average > 0.35  # paper: 0.8171
        assert result.average > fig3(n_days=7).average

    def test_fig5_special_app_dominance(self):
        result = fig5()
        assert result.n_installed == 23
        assert 4 <= result.n_active <= 10  # paper: 8
        assert result.top_app == "com.tencent.mm"
        assert result.top_share > 0.4  # paper: 0.59


@pytest.fixture(scope="module")
def fig7_result():
    return fig7()


class TestFig7:
    def test_netmaster_saving_large(self, fig7_result):
        assert fig7_result.netmaster_mean_saving > 0.55  # paper: 0.778

    def test_ordering_netmaster_beats_delay_batch(self, fig7_result):
        # Paper: 77.8% vs 22.5% — NetMaster wins by ~3x.
        assert (
            fig7_result.netmaster_mean_saving
            > 2.0 * fig7_result.delay_batch_mean_saving
        )

    def test_delay_batch_positive_but_modest(self, fig7_result):
        assert 0.1 < fig7_result.delay_batch_mean_saving < 0.35  # paper: 0.2254

    def test_near_oracle(self, fig7_result):
        assert fig7_result.worst_oracle_gap < 0.2  # paper worst: 0.112
        assert fig7_result.netmaster_mean_saving > 0.85 * fig7_result.oracle_mean_saving

    def test_radio_time_saving(self, fig7_result):
        assert 0.6 < fig7_result.mean_radio_time_saving < 0.9  # paper: 0.7539

    def test_bandwidth_ratios(self, fig7_result):
        assert fig7_result.mean_down_ratio > 2.0  # paper: 3.84
        assert fig7_result.mean_up_ratio > 2.0  # paper: 2.63
        # Peak rates are channel-bound: no scheduler raises them.
        assert 0.8 < fig7_result.mean_peak_down_ratio < 1.3
        assert 0.8 < fig7_result.mean_peak_up_ratio < 1.3

    def test_every_volunteer_covered(self, fig7_result):
        assert [v.user_id for v in fig7_result.volunteers] == [
            "volunteer1",
            "volunteer2",
            "volunteer3",
        ]
        for vol in fig7_result.volunteers:
            assert set(vol.energy_saving) == {
                "baseline",
                "oracle",
                "netmaster",
                "delay-batch-10s",
                "delay-batch-20s",
                "delay-batch-60s",
            }
            assert vol.energy_saving["baseline"] == 0.0


@pytest.fixture(scope="module")
def fig8_result():
    return fig8(delays_s=(0.0, 5.0, 60.0, 300.0, 600.0))


class TestFig8:
    def test_small_delay_saves_nothing(self, fig8_result):
        assert abs(fig8_result.energy_saving[1]) < 0.02  # 5 s

    def test_savings_grow_with_interval(self, fig8_result):
        assert fig8_result.energy_saving[-1] > fig8_result.energy_saving[1]
        assert fig8_result.energy_saving[-1] > 0.02  # paper @600s: 0.092

    def test_user_impact_grows_with_interval(self, fig8_result):
        affected = fig8_result.affected_ratio
        assert affected[-1] > affected[1]
        assert affected[-1] > 0.03  # paper: > 0.40 at 600 s

    def test_gap_cannot_be_filled(self, fig8_result):
        """The paper's conclusion: no delay both saves much and affects
        few users."""
        for saving, affected in zip(
            fig8_result.energy_saving, fig8_result.affected_ratio
        ):
            assert not (saving > 0.4 and affected < 0.01)

    def test_interactions_in_short_gaps(self, fig8_result):
        # Paper: 17% of interactions fall within 100 s of the previous one.
        assert 0.05 < fig8_result.interactions_within_100s_gaps < 0.4

    def test_helper_counts(self, history_and_days):
        _, days = history_and_days
        tight = interactions_in_short_gaps(days, 1.0)
        loose = interactions_in_short_gaps(days, 10_000.0)
        assert tight <= loose <= 1.0


@pytest.fixture(scope="module")
def fig9_result():
    return fig9(batch_sizes=(0, 2, 3, 5, 10))


class TestFig9:
    def test_batching_saves(self, fig9_result):
        assert fig9_result.radio_time_saving[-1] > 0.08  # paper: 0.177

    def test_saturates_past_five(self, fig9_result):
        """Paper: no improvement past 5 batched activities."""
        at5 = fig9_result.energy_saving[3]
        at10 = fig9_result.energy_saving[4]
        assert at10 - at5 < 0.05

    def test_monotone_up_to_five(self, fig9_result):
        savings = fig9_result.energy_saving[:4]  # sizes 0,2,3,5
        assert savings == sorted(savings)

    def test_interrupts_stay_low(self, fig9_result):
        # The batch method flushes on screen-on, keeping impact ≤ 1%.
        assert all(a <= 0.05 for a in fig9_result.affected_ratio)


class TestFig10:
    def test_fig10a_longer_sleep_lower_fraction(self):
        result = fig10a()
        for k_idx in range(len(result.wakeup_counts)):
            column = [result.fractions[t][k_idx] for t in result.sleep_intervals_s]
            assert column == sorted(column, reverse=True)

    def test_fig10a_fraction_decreases_with_wakeups(self):
        result = fig10a()
        for t in result.sleep_intervals_s:
            series = result.fractions[t]
            assert series[-1] <= series[0]

    def test_fig10b_exponential_wins(self):
        result = fig10b()
        assert result.exponential[-1] < result.fixed[-1] / 5
        assert result.exponential[-1] < result.random[-1] / 5

    def test_fig10b_counts_monotone(self):
        result = fig10b()
        for series in (result.exponential, result.fixed, result.random):
            assert series == sorted(series)

    def test_fig10c_tradeoff(self):
        result = fig10c(thresholds=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5))
        # Accuracy never increases with δ; energy saving never decreases
        # (within small numerical wiggle).
        acc = result.accuracy
        sav = result.energy_saving
        assert acc[0] >= acc[-1]
        assert sav[-1] >= sav[0] - 0.02
        assert 0.0 <= result.crossover <= 0.5


class TestUserExperience:
    def test_interrupt_ratio_below_one_percent(self):
        result = user_experience()
        assert result.user_interactions > 100
        assert result.interrupt_ratio < 0.01  # paper: < 1%


class TestApproximationRatio:
    def test_lemma_bound_holds(self):
        result = approximation_ratio(trials=40)
        assert result.trials == 40
        assert result.worst_ratio >= result.bound
        assert result.mean_ratio > 0.8  # typically near-optimal in practice


class TestSplitHistory:
    def test_split_shapes(self, volunteer):
        history, days = split_history(volunteer, 10)
        assert history.n_days == 10
        assert len(days) == volunteer.n_days - 10
        assert all(d.n_days == 1 for d in days)

    def test_split_bounds(self, volunteer):
        with pytest.raises(ValueError):
            split_history(volunteer, 0)
        with pytest.raises(ValueError):
            split_history(volunteer, volunteer.n_days)
