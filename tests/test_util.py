"""Unit tests for the shared utility helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import (
    DAY,
    HOUR,
    as_rng,
    check_fraction,
    check_interval,
    check_positive,
    day_of,
    hour_of,
    intersect_length,
    is_weekend,
    merge_intervals,
    total_length,
    weekday_of,
)


class TestValidators:
    def test_check_positive_strict(self):
        assert check_positive("x", 1.5) == 1.5
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0.0)

    def test_check_positive_nonstrict(self):
        assert check_positive("x", 0.0, strict=False) == 0.0
        with pytest.raises(ValueError):
            check_positive("x", -1.0, strict=False)

    def test_check_fraction(self):
        assert check_fraction("f", 0.0) == 0.0
        assert check_fraction("f", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_fraction("f", 1.01)

    def test_check_interval(self):
        check_interval(1.0, 2.0)
        with pytest.raises(ValueError):
            check_interval(2.0, 1.0)


class TestRng:
    def test_int_seed(self):
        a, b = as_rng(7), as_rng(7)
        assert a.random() == b.random()

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_rng(rng) is rng

    def test_none_gives_fresh(self):
        assert as_rng(None) is not as_rng(None)


class TestCalendar:
    def test_weekday_of(self):
        assert weekday_of(0, 0) == 0  # Monday
        assert weekday_of(6, 0) == 6  # Sunday
        assert weekday_of(7, 0) == 0  # wraps
        assert weekday_of(1, 4) == 5  # Friday start -> Saturday

    def test_is_weekend(self):
        assert not is_weekend(0, 0)
        assert is_weekend(5, 0) and is_weekend(6, 0)

    def test_weekday_validation(self):
        with pytest.raises(ValueError):
            weekday_of(-1, 0)
        with pytest.raises(ValueError):
            weekday_of(0, 7)

    def test_hour_and_day_of(self):
        assert hour_of(0.0) == 0
        assert hour_of(HOUR) == 1
        assert hour_of(DAY + 2 * HOUR + 1.0) == 2
        assert day_of(DAY - 0.001) == 0
        assert day_of(DAY) == 1


class TestIntervals:
    def test_merge_disjoint(self):
        assert merge_intervals([(5.0, 6.0), (1.0, 2.0)]) == [(1.0, 2.0), (5.0, 6.0)]

    def test_merge_overlapping(self):
        assert merge_intervals([(1.0, 3.0), (2.0, 5.0)]) == [(1.0, 5.0)]

    def test_merge_touching(self):
        assert merge_intervals([(1.0, 2.0), (2.0, 3.0)]) == [(1.0, 3.0)]

    def test_merge_with_gap_tolerance(self):
        assert merge_intervals([(1.0, 2.0), (2.5, 3.0)], gap=1.0) == [(1.0, 3.0)]

    def test_merge_empty(self):
        assert merge_intervals([]) == []

    def test_merge_rejects_negative_gap(self):
        with pytest.raises(ValueError):
            merge_intervals([(0.0, 1.0)], gap=-1.0)

    def test_total_length(self):
        assert total_length([(0.0, 2.0), (5.0, 6.0)]) == 3.0

    def test_intersect_length(self):
        a = [(0.0, 10.0), (20.0, 30.0)]
        b = [(5.0, 25.0)]
        assert intersect_length(a, b) == 10.0

    def test_intersect_disjoint(self):
        assert intersect_length([(0.0, 1.0)], [(2.0, 3.0)]) == 0.0

    intervals = st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100),
            st.floats(min_value=0, max_value=50),
        ).map(lambda p: (p[0], p[0] + p[1])),
        max_size=10,
    )

    @given(intervals)
    @settings(max_examples=60, deadline=None)
    def test_merge_invariants(self, raw):
        merged = merge_intervals(raw)
        # Disjoint, sorted, and covering at least every input point.
        for (a0, a1), (b0, b1) in zip(merged, merged[1:]):
            assert a1 < b0
        for start, end in raw:
            assert any(lo <= start and end <= hi for lo, hi in merged)
        assert total_length(merged) <= sum(e - s for s, e in raw) + 1e-9

    @given(intervals, intervals)
    @settings(max_examples=60, deadline=None)
    def test_intersection_symmetry_and_bounds(self, raw_a, raw_b):
        a, b = merge_intervals(raw_a), merge_intervals(raw_b)
        ab = intersect_length(a, b)
        ba = intersect_length(b, a)
        assert ab == pytest.approx(ba)
        assert ab <= min(total_length(a), total_length(b)) + 1e-9
