"""Telemetry across the pipeline: merge determinism, zero-effect runs,
and task-identity error attribution."""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.baselines import DelayBatchPolicy, NaivePolicy, NetMasterPolicy
from repro.core.netmaster import NetMasterConfig
from repro.evaluation import split_history
from repro.evaluation.metrics import run_policy_over_days
from repro.runtime.parallel import PolicyTask, PolicyTaskError, run_policy_tasks


@pytest.fixture(scope="module")
def small_grid(volunteers, wcdma):
    tasks = []
    for trace in volunteers[:2]:
        history, days = split_history(trace, 10)
        for name, policy in (
            ("baseline", NaivePolicy()),
            ("netmaster", NetMasterPolicy(history, NetMasterConfig())),
        ):
            tasks.append(
                PolicyTask(
                    name=f"{trace.user_id}/{name}",
                    policy=policy,
                    days=tuple(days[:2]),
                    model=wcdma,
                )
            )
    return tasks


class TestMergeDeterminism:
    def test_parallel_merged_registry_equals_serial(self, small_grid):
        """The ISSUE acceptance check: per-worker registries shipped back
        and merged in task order reproduce the serial registry exactly.

        ``runner.chunk_count`` is parent-side dispatch accounting — it
        counts pool submissions, which legitimately depend on ``jobs``
        (serial runs submit nothing) — so it is excluded from the
        simulation-counter comparison.
        """
        with telemetry.isolated() as (reg, _):
            run_policy_tasks(small_grid, jobs=1)
            serial = reg.snapshot()
        with telemetry.isolated() as (reg, _):
            run_policy_tasks(small_grid, jobs=4)
            parallel = reg.snapshot()
        assert parallel["counters"].pop("runner.chunk_count") >= 1
        assert serial == parallel
        assert serial["counters"]["runtime.parallel.tasks"] == len(small_grid)

    def test_parallel_sim_spans_equal_serial(self, small_grid):
        """Sim-time spans are deterministic; only the recording pid may
        differ between a worker and the serial parent."""

        def sim_spans(jobs):
            with telemetry.isolated() as (_, trc):
                run_policy_tasks(small_grid, jobs=jobs)
                return [
                    {k: v for k, v in s.items() if k != "pid"}
                    for s in trc.export_spans()
                    if s["domain"] == "sim"
                ]

        serial, parallel = sim_spans(1), sim_spans(2)
        assert serial and serial == parallel

    def test_serial_run_twice_is_identical(self, small_grid):
        snaps = []
        for _ in range(2):
            with telemetry.isolated() as (reg, _):
                run_policy_tasks(small_grid, jobs=1)
                snaps.append(reg.snapshot())
        assert snaps[0] == snaps[1]


class TestZeroEffect:
    def test_results_identical_with_telemetry_on_off(self, volunteers, wcdma):
        """Figure inputs are bit-identical whether telemetry observes or
        not — instrumentation must never touch the computation."""
        _, days = split_history(volunteers[0], 10)

        def energies():
            return [
                m.energy_j
                for m in run_policy_over_days(DelayBatchPolicy(60.0), days, wcdma)
            ]

        with telemetry.isolated():  # metrics + tracing on
            traced = energies()
        was_metrics = telemetry.metrics_enabled()
        try:
            telemetry.configure(metrics_enabled=False, tracing_enabled=False)
            dark = energies()
        finally:
            telemetry.configure(metrics_enabled=was_metrics)
        assert traced == dark

    def test_instrumentation_records_pipeline_counters(self, volunteers, wcdma):
        history, days = split_history(volunteers[0], 10)
        policy = NetMasterPolicy(history, NetMasterConfig())
        with telemetry.isolated() as (reg, trc):
            run_policy_over_days(policy, days[:2], wcdma)
            counters = reg.snapshot()["counters"]
            cats = {s.cat for s in trc.spans}
        assert counters["core.netmaster.days"] == 2
        assert counters["radio.rrc.simulations"] >= 2
        assert "rrc" in cats  # RRC state residency spans
        assert "evaluation" in cats  # per-day replay wall spans


class _BoomPolicy:
    """Picklable policy that always fails (module-level for the pool)."""

    name = "boom"
    day_independent = False

    def execute_day(self, day):
        raise RuntimeError("kaboom")


class TestErrorAttribution:
    def _task(self, volunteers, wcdma, n_days=2):
        _, days = split_history(volunteers[0], 10)
        return PolicyTask(
            name=f"{volunteers[0].user_id}/boom",
            policy=_BoomPolicy(),
            days=tuple(days[:n_days]),
            model=wcdma,
        )

    def test_error_names_task_day_and_policy(self, volunteers, wcdma):
        task = self._task(volunteers, wcdma)
        with pytest.raises(PolicyTaskError) as exc_info:
            run_policy_tasks([task], jobs=1)
        msg = str(exc_info.value)
        assert task.name in msg
        assert "day 1/2" in msg
        assert "_BoomPolicy" in msg
        assert "RuntimeError: kaboom" in msg

    def test_error_survives_worker_pool(self, volunteers, wcdma):
        """PolicyTaskError must cross the process boundary intact and not
        be swallowed by the runner's serial-fallback net."""
        ok_task = PolicyTask(
            name="ok",
            policy=NaivePolicy(),
            days=self._task(volunteers, wcdma).days,
            model=wcdma,
        )
        with pytest.raises(PolicyTaskError, match="boom"):
            run_policy_tasks(
                [ok_task, self._task(volunteers, wcdma)], jobs=2
            )

    def test_policy_task_error_is_not_runtime_error(self):
        # the fallback net catches RuntimeError; task failures must not be
        assert not issubclass(PolicyTaskError, RuntimeError)
