"""MetricsRegistry: instruments, snapshots, merges, and the null twin."""

from __future__ import annotations

import pytest

from repro.telemetry import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    diff_snapshots,
)


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        assert reg.counter("a").value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            MetricsRegistry().inc("a", -1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 1.0)
        reg.set_gauge("g", 7.5)
        assert reg.gauge("g").value == 7.5

    def test_unwritten_gauge_not_snapshotted(self):
        reg = MetricsRegistry()
        reg.gauge("touched-not-written")
        assert reg.snapshot()["gauges"] == {}

    def test_histogram_buckets_and_sum(self):
        h = Histogram("h", (1.0, 10.0))
        for v in (0.5, 1.0, 2.0, 100.0):
            h.observe(v)
        # upper edges are inclusive: 1.0 lands in the first bucket
        assert h.counts == [2, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(103.5)

    def test_histogram_percentiles(self):
        h = Histogram("h", (1.0, 10.0, 100.0))
        for _ in range(9):
            h.observe(0.5)
        h.observe(50.0)
        assert h.percentile(0.5) == 1.0
        assert h.percentile(1.0) == 100.0
        h.observe(1e9)  # overflow bucket
        assert h.percentile(1.0) == float("inf")

    def test_histogram_percentile_validates_q(self):
        with pytest.raises(ValueError, match="q must be"):
            Histogram("h").percentile(1.5)

    def test_histogram_empty_percentile(self):
        assert Histogram("h").percentile(0.9) == 0.0

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="needs >= 1"):
            Histogram("h", ())
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", (2.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", (1.0, 1.0))

    def test_histogram_bounds_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1.0, 2.0))
        with pytest.raises(ValueError, match="already exists"):
            reg.histogram("h", (1.0, 3.0))
        # same bounds (or unspecified) is fine
        reg.histogram("h", (1.0, 2.0))
        reg.histogram("h")

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))


class TestSnapshotMerge:
    def test_snapshot_roundtrip_via_merge(self):
        a = MetricsRegistry()
        a.inc("c", 3)
        a.set_gauge("g", 2.0)
        a.observe("h", 0.5, (1.0, 10.0))
        b = MetricsRegistry()
        b.merge_snapshot(a.snapshot())
        assert b.snapshot() == a.snapshot()

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, n in ((a, 2), (b, 5)):
            reg.inc("c", n)
            reg.observe("h", float(n), (1.0, 10.0))
        a.merge(b)
        assert a.counter("c").value == 7
        assert a.histogram("h").count == 2
        assert a.histogram("h").sum == pytest.approx(7.0)

    def test_merge_gauge_takes_incoming(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_gauge("g", 1.0)
        b.set_gauge("g", 9.0)
        a.merge(b)
        assert a.gauge("g").value == 9.0

    def test_merge_order_independent_for_sums(self):
        """Integer micro-unit sums: merge order cannot change the total."""
        values = [0.1, 0.2, 0.3, 1e-6, 123456.789]
        parts = []
        for v in values:
            r = MetricsRegistry()
            r.observe("h", v)
            parts.append(r.snapshot())
        fwd, rev = MetricsRegistry(), MetricsRegistry()
        for p in parts:
            fwd.merge_snapshot(p)
        for p in reversed(parts):
            rev.merge_snapshot(p)
        assert fwd.histogram("h").sum_micro == rev.histogram("h").sum_micro

    def test_merge_rejects_differing_bounds(self):
        a = MetricsRegistry()
        a.observe("h", 1.0, (1.0, 2.0))
        b = MetricsRegistry()
        b.observe("h", 1.0, (1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge_snapshot(b.snapshot())

    def test_diff_snapshots(self):
        reg = MetricsRegistry()
        reg.inc("a", 2)
        reg.observe("h", 0.5, (1.0,))
        before = reg.snapshot()
        reg.inc("a", 3)
        reg.inc("b")
        reg.set_gauge("g", 4.0)
        reg.observe("h", 2.0, (1.0,))
        delta = diff_snapshots(before, reg.snapshot())
        assert delta["counters"] == {"a": 3, "b": 1}
        assert delta["gauges"] == {"g": 4.0}
        assert delta["histograms"]["h"]["count"] == 1
        assert delta["histograms"]["h"]["counts"] == [0, 1]

    def test_diff_snapshots_drops_unchanged(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.observe("h", 0.5)
        snap = reg.snapshot()
        delta = diff_snapshots(snap, snap)
        assert delta["counters"] == {} and delta["histograms"] == {}

    def test_clear(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.clear()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestNullRegistry:
    def test_null_registry_has_no_side_effects(self):
        reg = NullRegistry()
        assert reg.enabled is False
        reg.inc("a", 5)
        reg.set_gauge("g", 1.0)
        reg.observe("h", 2.0)
        reg.counter("a").inc()
        reg.gauge("g").set(3.0)
        reg.histogram("h").observe(4.0)
        reg.merge_snapshot({"counters": {"x": 1}})
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_null_registry_is_a_registry(self):
        # call sites hold the base type; the null twin must substitute
        assert isinstance(NullRegistry(), MetricsRegistry)
