"""Telemetry export files, the rendered report, and results_to_json."""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np
import pytest

from repro.evaluation.reporting import PAPER, results_to_json
from repro.telemetry import MetricsRegistry, Tracer
from repro.telemetry.report import (
    METRICS_FILE,
    RESULTS_FILE,
    SPANS_FILE,
    TRACE_FILE,
    format_report,
    format_snapshot_report,
    write_telemetry,
)


@pytest.fixture
def populated():
    reg = MetricsRegistry()
    reg.inc("core.netmaster.days", 3)
    reg.inc("radio.rrc.simulations", 9)
    reg.observe("core.adjustment.gap_s", 120.0)
    trc = Tracer()
    trc.record_span("dch", "rrc", 0.0, 2.0)
    with trc.span("habit-fit", "habits"):
        pass
    return reg, trc


class TestWriteTelemetry:
    def test_writes_all_files(self, tmp_path, populated):
        reg, trc = populated
        written = write_telemetry(tmp_path, reg, trc, results={"schema": 1})
        names = {p.name for p in written}
        assert names == {METRICS_FILE, SPANS_FILE, TRACE_FILE, RESULTS_FILE}
        for p in written:
            assert p.exists()

    def test_results_file_optional(self, tmp_path, populated):
        reg, trc = populated
        written = write_telemetry(tmp_path, reg, trc)
        assert RESULTS_FILE not in {p.name for p in written}

    def test_metrics_payload_shape(self, tmp_path, populated):
        reg, trc = populated
        write_telemetry(
            tmp_path, reg, trc, per_experiment={"fig7": reg.snapshot()}
        )
        payload = json.loads((tmp_path / METRICS_FILE).read_text("utf-8"))
        assert payload["schema"] == 1
        assert payload["overall"]["counters"]["core.netmaster.days"] == 3
        assert "fig7" in payload["per_experiment"]
        assert payload["dropped_spans"] == 0


class TestFormatReport:
    def test_renders_sections(self, tmp_path, populated):
        reg, trc = populated
        write_telemetry(
            tmp_path,
            reg,
            trc,
            per_experiment={"fig7": reg.snapshot()},
            results=results_to_json({}),
        )
        text = format_report(tmp_path)
        assert "== fig7 ==" in text
        assert "core.netmaster.days" in text
        assert "core.adjustment.gap_s" in text  # histogram table
        assert "habit-fit" in text  # slowest wall spans
        assert "== overall ==" in text

    def test_headline_section(self, tmp_path, populated):
        from repro.evaluation.experiments import approximation_ratio

        reg, trc = populated
        result = approximation_ratio(trials=5)
        write_telemetry(
            tmp_path, reg, trc, results=results_to_json({"approx": result})
        )
        text = format_report(tmp_path)
        assert "== results vs paper ==" in text
        assert "worst approximation ratio" in text

    def test_missing_dir_raises_with_hint(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="--telemetry-out"):
            format_report(tmp_path / "nope")


class TestMonitorSection:
    def _snapshot(self, tmp_path, counters):
        path = tmp_path / "metrics.json"
        path.write_text(
            json.dumps(
                {"schema": 1, "overall": {"counters": counters, "histograms": {}}}
            ),
            encoding="utf-8",
        )
        return path

    def test_monitor_counters_get_their_own_table(self, tmp_path):
        # Alert counts are dwarfed by event counters: the top-by-value
        # table would hide them, so the snapshot report must carry a
        # dedicated monitoring section with the full monitor.* family.
        counters = {f"stream.events.{i}": 1_000_000 + i for i in range(20)}
        counters.update(
            {
                "monitor.alerts": 3,
                "monitor.alerts.runaway_energy": 2,
                "monitor.alerts.dch_stuck": 1,
                "monitor.quarantined_users": 1,
                "monitor.sink_errors": 0,
            }
        )
        text = format_snapshot_report(self._snapshot(tmp_path, counters))
        assert "monitoring:" in text
        monitoring_tail = text.split("monitoring:", 1)[1]
        for name in (
            "monitor.alerts",
            "monitor.alerts.dch_stuck",
            "monitor.alerts.runaway_energy",
            "monitor.quarantined_users",
            "monitor.sink_errors",
        ):
            assert name in monitoring_tail

    def test_section_absent_without_monitor_counters(self, tmp_path):
        text = format_snapshot_report(
            self._snapshot(tmp_path, {"stream.events": 5})
        )
        assert "monitoring:" not in text


@dataclass
class _FakeResult:
    matrix: np.ndarray
    ratio: np.floating
    count: np.integer
    bad: float
    nested: dict


class TestResultsToJson:
    def test_sanitizes_numpy_and_nonfinite(self):
        result = _FakeResult(
            matrix=np.array([[1.0, 2.0]]),
            ratio=np.float64(0.5),
            count=np.int64(7),
            bad=float("nan"),
            nested={1: (np.float32(2.0),)},
        )
        out = results_to_json({"custom": result})
        values = out["experiments"]["custom"]["values"]
        assert values["matrix"] == [[1.0, 2.0]]
        assert values["ratio"] == 0.5 and isinstance(values["ratio"], float)
        assert values["count"] == 7 and isinstance(values["count"], int)
        assert values["bad"] == "nan"
        assert values["nested"] == {"1": [2.0]}
        json.dumps(out)  # strict-JSON round-trip must not raise

    def test_headlines_pair_measured_with_paper(self):
        from repro.evaluation.experiments import approximation_ratio, fig10a

        approx = approximation_ratio(trials=5)
        out = results_to_json({"approx": approx, "fig10a": fig10a()})
        headlines = out["experiments"]["approx"]["headlines"]
        labels = {h["label"] for h in headlines}
        assert "worst approximation ratio" in labels
        assert all(isinstance(h["measured"], float) for h in headlines)
        # fig10a has no paper headline entries but still dumps values
        assert out["experiments"]["fig10a"]["headlines"] == []
        assert out["experiments"]["fig10a"]["values"]

    def test_paper_keys_resolve(self):
        """Every PAPER key referenced by a headline must exist."""
        from repro.evaluation.reporting import _HEADLINES

        for rows in _HEADLINES.values():
            for _, _, key in rows:
                assert key is None or key in PAPER
