"""The global telemetry switches: configure(), isolated(), reset."""

from __future__ import annotations

from repro import telemetry
from repro.telemetry import MetricsRegistry, NullRegistry, NullTracer, Tracer


class TestConfigure:
    def teardown_method(self):
        telemetry.configure(metrics_enabled=True, tracing_enabled=False)

    def test_defaults(self):
        assert telemetry.metrics_enabled() is True
        assert telemetry.tracing_enabled() is False
        assert isinstance(telemetry.tracer(), NullTracer)

    def test_toggle_metrics(self):
        telemetry.configure(metrics_enabled=False)
        assert isinstance(telemetry.metrics(), NullRegistry)
        telemetry.configure(metrics_enabled=True)
        assert telemetry.metrics_enabled()
        assert not isinstance(telemetry.metrics(), NullRegistry)

    def test_enable_keeps_accumulated_state(self):
        telemetry.metrics().inc("kept")
        telemetry.configure(metrics_enabled=True)  # already on: no-op
        assert telemetry.metrics().counter("kept").value >= 1

    def test_disable_drops_state(self):
        telemetry.metrics().inc("gone")
        telemetry.configure(metrics_enabled=False)
        telemetry.configure(metrics_enabled=True)
        assert telemetry.metrics().snapshot()["counters"].get("gone") is None

    def test_toggle_tracing(self):
        telemetry.configure(tracing_enabled=True)
        assert telemetry.tracing_enabled()
        assert not isinstance(telemetry.tracer(), NullTracer)
        telemetry.configure(tracing_enabled=False)
        assert isinstance(telemetry.tracer(), NullTracer)

    def test_reset_metrics_keeps_enabled_state(self):
        telemetry.metrics().inc("x")
        reg = telemetry.reset_metrics()
        assert reg is telemetry.metrics()
        assert reg.snapshot()["counters"] == {}
        assert telemetry.metrics_enabled()


class TestIsolated:
    def test_swaps_in_fresh_pair_and_restores(self):
        outer_reg, outer_trc = telemetry.metrics(), telemetry.tracer()
        with telemetry.isolated() as (reg, trc):
            assert telemetry.metrics() is reg is not outer_reg
            assert telemetry.tracer() is trc is not outer_trc
            assert isinstance(reg, MetricsRegistry) and reg.enabled
            assert isinstance(trc, Tracer) and trc.enabled
            reg.inc("inner")
        assert telemetry.metrics() is outer_reg
        assert telemetry.tracer() is outer_trc
        assert outer_reg.snapshot()["counters"].get("inner") is None

    def test_without_tracing(self):
        with telemetry.isolated(with_tracing=False) as (_, trc):
            assert isinstance(trc, NullTracer)

    def test_restores_on_exception(self):
        outer = telemetry.metrics()
        try:
            with telemetry.isolated():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert telemetry.metrics() is outer
