"""Tracer: span recording, context lanes, and the Chrome trace export."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import NullTracer, Tracer
from repro.telemetry.tracer import SIM_PID


class TestRecording:
    def test_sim_span_defaults(self):
        trc = Tracer()
        trc.record_span("dch", "rrc", 10.0, 12.5)
        (span,) = trc.spans
        assert span.domain == "sim"
        assert span.track == "rrc"
        assert span.dur_s == pytest.approx(2.5)

    def test_negative_duration_clamped(self):
        trc = Tracer()
        trc.record_span("x", "c", 5.0, 3.0)
        assert trc.spans[0].dur_s == 0.0

    def test_context_prefixes_sim_lanes_only(self):
        trc = Tracer()
        with trc.sim_context("user1/netmaster:d3"):
            trc.record_span("dch", "rrc", 0.0, 1.0)
            with trc.span("solve", "scheduler"):
                pass
        trc.record_span("dch", "rrc", 0.0, 1.0)
        sim1, wall, sim2 = trc.spans
        assert sim1.track == "user1/netmaster:d3/rrc"
        assert wall.domain == "wall" and wall.track == "scheduler"
        assert sim2.track == "rrc"  # context restored on exit

    def test_wall_span_records_args(self):
        trc = Tracer()
        with trc.span("solve", "scheduler", items=4):
            pass
        assert trc.spans[0].args == {"items": 4}
        assert trc.spans[0].dur_s >= 0.0

    def test_max_spans_drops_and_counts(self):
        trc = Tracer(max_spans=2)
        for i in range(5):
            trc.record_span(f"s{i}", "c", 0.0, 1.0)
        assert len(trc.spans) == 2
        assert trc.dropped == 3

    def test_max_spans_validated(self):
        with pytest.raises(ValueError, match="max_spans"):
            Tracer(max_spans=0)

    def test_export_ingest_roundtrip(self):
        a = Tracer()
        with a.sim_context("lane"):
            a.record_span("x", "c", 1.0, 2.0, args={"k": 1})
        b = Tracer()
        b.ingest(a.export_spans())
        assert b.export_spans() == a.export_spans()

    def test_clear(self):
        trc = Tracer(max_spans=1)
        trc.record_span("a", "c", 0.0, 1.0)
        trc.record_span("b", "c", 0.0, 1.0)
        trc.clear()
        assert trc.spans == [] and trc.dropped == 0


class TestChromeExport:
    def test_complete_events_in_microseconds(self):
        trc = Tracer()
        trc.record_span("dch", "rrc", 1.5, 2.0)
        events = trc.chrome_trace_events()
        (x,) = [e for e in events if e["ph"] == "X"]
        assert x["ts"] == pytest.approx(1_500_000.0)
        assert x["dur"] == pytest.approx(500_000.0)
        assert x["cat"] == "rrc" and x["pid"] == SIM_PID

    def test_metadata_names_processes_and_threads(self):
        trc = Tracer()
        trc.record_span("dch", "rrc", 0.0, 1.0)
        with trc.span("fit", "habits"):
            pass
        events = trc.chrome_trace_events()
        meta = [e for e in events if e["ph"] == "M"]
        names = {(e["name"], e["args"]["name"]) for e in meta}
        assert ("process_name", "simulation time") in names
        assert ("thread_name", "rrc") in names
        assert ("thread_name", "habits") in names
        # wall pid is offset past the synthetic sim pid
        wall = [e for e in events if e["ph"] == "X" and e["cat"] == "habits"]
        assert wall[0]["pid"] > SIM_PID

    def test_tracks_get_stable_tids(self):
        trc = Tracer()
        trc.record_span("a", "rrc", 0.0, 1.0)
        trc.record_span("b", "screen", 0.0, 1.0)
        trc.record_span("c", "rrc", 2.0, 3.0)
        xs = [e for e in trc.chrome_trace_events() if e["ph"] == "X"]
        assert xs[0]["tid"] == xs[2]["tid"] != xs[1]["tid"]

    def test_write_chrome_is_valid_json(self, tmp_path):
        trc = Tracer()
        trc.record_span("dch", "rrc", 0.0, 1.0)
        path = tmp_path / "trace.json"
        trc.write_chrome(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in payload["traceEvents"])

    def test_to_jsonl(self, tmp_path):
        trc = Tracer()
        trc.record_span("a", "c", 0.0, 1.0)
        trc.record_span("b", "c", 1.0, 2.0)
        path = tmp_path / "spans.jsonl"
        trc.to_jsonl(path)
        lines = path.read_text(encoding="utf-8").strip().splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]


class TestNullTracer:
    def test_records_nothing(self):
        trc = NullTracer()
        assert trc.enabled is False
        trc.record_span("a", "c", 0.0, 1.0)
        with trc.span("x"):
            pass
        with trc.sim_context("lane"):
            trc.set_context("other")
        trc.ingest([{"name": "a"}])
        assert trc.spans == []
        assert trc.chrome_trace_events() == []

    def test_is_a_tracer(self):
        assert isinstance(NullTracer(), Tracer)
