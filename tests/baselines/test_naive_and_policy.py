"""Tests for the policy protocol and the stock baseline."""

from __future__ import annotations

import pytest

from repro.baselines import NaivePolicy, PolicyOutcome, SchedulingPolicy
from repro.radio import FullTail, wcdma_model
from repro.traces import NetworkActivity


class TestNaivePolicy:
    def test_identity_schedule(self, test_day):
        outcome = NaivePolicy().execute_day(test_day)
        assert outcome.activities == list(test_day.activities)
        assert isinstance(outcome.tail_policy, FullTail)
        assert outcome.interrupts == 0

    def test_energy_matches_trace_energy(self, test_day, wcdma):
        from repro.radio import trace_energy

        outcome = NaivePolicy().execute_day(test_day)
        assert outcome.energy(wcdma).energy_j == pytest.approx(
            trace_energy(test_day, wcdma).energy_j
        )

    def test_rejects_multiday(self, volunteer):
        with pytest.raises(ValueError, match="single-day"):
            NaivePolicy().execute_day(volunteer)

    def test_satisfies_protocol(self):
        assert isinstance(NaivePolicy(), SchedulingPolicy)


class TestPolicyOutcome:
    def _outcome(self, **kw):
        acts = [NetworkActivity(0.0, "a", 1000.0, 100.0, 5.0, True)]
        defaults = dict(policy="x", activities=acts)
        defaults.update(kw)
        return PolicyOutcome(**defaults)

    def test_transfer_windows(self):
        outcome = self._outcome()
        assert outcome.transfer_windows() == [(0.0, 5.0)]

    def test_interrupt_ratio(self):
        outcome = self._outcome(interrupts=1, user_interactions=100)
        assert outcome.interrupt_ratio == 0.01
        assert self._outcome().interrupt_ratio == 0.0

    def test_affected_ratio(self):
        outcome = self._outcome(affected_user_activities=5, user_interactions=50)
        assert outcome.affected_ratio == 0.1

    def test_payload_validation(self, tiny_trace):
        outcome = self._outcome()
        with pytest.raises(ValueError, match="payload"):
            outcome.validate_payload(tiny_trace)

    def test_wake_energy(self, wcdma):
        outcome = self._outcome(extra_windows=[(100.0, 101.0), (200.0, 201.0)])
        expected = 2 * (wcdma.promo_fach_energy_j + wcdma.p_fach_w * 1.0)
        assert outcome.wake_energy_j(wcdma) == pytest.approx(expected)

    def test_wake_energy_added_to_report(self, wcdma):
        plain = self._outcome().energy(wcdma)
        with_wakes = self._outcome(extra_windows=[(100.0, 101.0)]).energy(wcdma)
        assert with_wakes.energy_j > plain.energy_j
        assert "wake" in with_wakes.state_energy_j

    def test_radio_on_includes_wakes(self, wcdma):
        outcome = self._outcome(extra_windows=[(1000.0, 1001.0)])
        intervals = outcome.radio_on(wcdma)
        assert any(lo <= 1000.0 < hi for lo, hi in intervals)

    def test_activity_tails_length_checked(self, wcdma):
        outcome = self._outcome(activity_tails=[1.0, 2.0])
        with pytest.raises(ValueError, match="length"):
            outcome.energy(wcdma)

    def test_activity_tails_priced(self, wcdma):
        import math

        full = self._outcome(activity_tails=[math.inf]).energy(wcdma)
        cut = self._outcome(activity_tails=[0.0]).energy(wcdma)
        assert cut.energy_j < full.energy_j
