"""Tests for the oracle and the NetMaster policy adapter."""

from __future__ import annotations

import pytest

from repro.baselines import NaivePolicy, NetMasterPolicy, OraclePolicy
from repro.radio import wcdma_model
from repro.traces import NetworkActivity, ScreenSession, Trace

MODEL = wcdma_model()


class TestOraclePolicy:
    def test_screen_off_moved_to_sessions(self, test_day):
        outcome = OraclePolicy().execute_day(test_day)
        session_starts = {s.start for s in test_day.screen_sessions}
        moved = [a for a in outcome.activities if not a.screen_on]
        # Every deferred transfer is packed at/after some session start.
        for activity in moved:
            assert any(
                abs(activity.time - start) < 120.0 for start in session_starts
            )

    def test_oracle_beats_everything(self, test_day, history):
        base = NaivePolicy().execute_day(test_day).energy(MODEL).energy_j
        nm = NetMasterPolicy(history).execute_day(test_day).energy(MODEL).energy_j
        oracle = OraclePolicy().execute_day(test_day).energy(MODEL).energy_j
        assert oracle <= nm * 1.02  # oracle is the (near-)floor
        assert oracle < base

    def test_payload_conserved(self, test_day):
        OraclePolicy().execute_day(test_day).validate_payload(test_day)

    def test_day_without_sessions(self):
        trace = Trace(
            user_id="nosess",
            n_days=1,
            start_weekday=0,
            activities=[NetworkActivity(1000.0, "a", 500.0, 50.0, 4.0, False)],
        )
        outcome = OraclePolicy().execute_day(trace)
        assert len(outcome.activities) == 1

    def test_compression_applied(self):
        trace = Trace(
            user_id="c",
            n_days=1,
            start_weekday=0,
            screen_sessions=[ScreenSession(5000.0, 5030.0)],
            activities=[
                NetworkActivity(1000.0, "a", 48000.0, 0.0, 60.0, False)
            ],
        )
        outcome = OraclePolicy().execute_day(trace)
        moved = outcome.activities[0]
        assert moved.duration == pytest.approx(2.0)  # 48 kB at 24 kB/s

    def test_guard_validation(self):
        with pytest.raises(ValueError):
            OraclePolicy(guard_s=-1.0)


class TestNetMasterPolicyAdapter:
    def test_wraps_middleware(self, history, test_day):
        policy = NetMasterPolicy(history)
        outcome = policy.execute_day(test_day)
        assert outcome.policy == "netmaster"
        assert outcome.activity_tails is not None
        assert len(outcome.activity_tails) == len(outcome.activities)
        outcome.validate_payload(test_day)

    def test_middleware_accessible(self, history):
        policy = NetMasterPolicy(history)
        assert policy.middleware.habit is not None

    def test_repeatable(self, history, test_day):
        policy = NetMasterPolicy(history)
        a = policy.execute_day(test_day)
        b = policy.execute_day(test_day)
        assert [x.time for x in a.activities] == [x.time for x in b.activities]

    def test_interrupts_tracked(self, history, test_day):
        outcome = NetMasterPolicy(history).execute_day(test_day)
        assert outcome.user_interactions == len(test_day.usages)
        assert outcome.interrupt_ratio <= 0.01
