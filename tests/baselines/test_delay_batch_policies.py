"""Tests for the delay, batch, and combined delay&batch baselines."""

from __future__ import annotations

import math

import pytest

from repro._util import DAY
from repro.baselines import BatchPolicy, DelayBatchPolicy, DelayPolicy, NaivePolicy
from repro.radio import wcdma_model
from repro.traces import AppUsage, NetworkActivity, ScreenSession, Trace

MODEL = wcdma_model()


def _burst_day():
    """A day with one session and a burst of three screen-off syncs."""
    sessions = [ScreenSession(40000.0, 40060.0)]
    usages = [AppUsage(40000.0, "com.tencent.mm", 60.0)]
    activities = [
        NetworkActivity(40010.0, "com.tencent.mm", 5000.0, 500.0, 10.0, True),
        NetworkActivity(10000.0, "a", 1000.0, 100.0, 4.0, False),
        NetworkActivity(10030.0, "b", 1000.0, 100.0, 4.0, False),
        NetworkActivity(10065.0, "c", 1000.0, 100.0, 4.0, False),
    ]
    return Trace(
        user_id="burst",
        n_days=1,
        start_weekday=0,
        screen_sessions=sessions,
        usages=usages,
        activities=activities,
    )


class TestDelayPolicy:
    def test_zero_interval_is_identity(self, test_day):
        outcome = DelayPolicy(0.0).execute_day(test_day)
        assert [a.time for a in outcome.activities] == [
            a.time for a in test_day.activities
        ]

    def test_quantized_release(self):
        outcome = DelayPolicy(100.0).execute_day(_burst_day())
        moved = [a for a in outcome.activities if not a.screen_on]
        # 10000 is on a tick boundary -> released at 10100; 10030 and
        # 10065 share the 10100 tick and pack together.
        assert moved[0].time == pytest.approx(10100.0)
        assert moved[1].time == pytest.approx(10100.0 + 4.2)

    def test_same_tick_items_merge_radio_bursts(self):
        base = NaivePolicy().execute_day(_burst_day()).energy(MODEL)
        delayed = DelayPolicy(600.0).execute_day(_burst_day()).energy(MODEL)
        assert delayed.energy_j < base.energy_j

    def test_foreground_never_delayed(self, test_day):
        outcome = DelayPolicy(300.0).execute_day(test_day)
        fg_before = [a.time for a in test_day.activities if a.screen_on]
        fg_after = sorted(a.time for a in outcome.activities if a.screen_on)
        assert fg_after == sorted(fg_before)

    def test_payload_conserved(self, test_day):
        outcome = DelayPolicy(120.0).execute_day(test_day)
        outcome.validate_payload(test_day)

    def test_affected_grows_with_interval(self, history_and_days):
        _, days = history_and_days
        ratios = []
        for interval in (5.0, 120.0, 600.0):
            affected = total = 0
            for day in days:
                outcome = DelayPolicy(interval).execute_day(day)
                affected += outcome.affected_user_activities
                total += outcome.user_interactions
            ratios.append(affected / total)
        assert ratios == sorted(ratios)

    def test_name(self):
        assert DelayPolicy(60.0).name == "delay-60s"


class TestBatchPolicy:
    def test_batch_leq_one_is_identity(self, test_day):
        for n in (0, 1):
            outcome = BatchPolicy(n).execute_day(test_day)
            assert [a.time for a in outcome.activities] == [
                a.time for a in test_day.activities
            ]

    def test_batch_releases_on_fill(self):
        outcome = BatchPolicy(2).execute_day(_burst_day())
        moved = sorted(
            (a for a in outcome.activities if not a.screen_on), key=lambda a: a.time
        )
        # First two released together when the second arrives (t=10030).
        assert moved[0].time == pytest.approx(10030.0)
        assert moved[1].time == pytest.approx(10030.0 + 4.2)

    def test_screen_on_flushes(self):
        # Batch of 10 never fills; the session at 40000 flushes it.
        outcome = BatchPolicy(10).execute_day(_burst_day())
        moved = [a for a in outcome.activities if not a.screen_on]
        assert all(a.time >= 40000.0 for a in moved)

    def test_batching_saves_energy(self, test_day):
        base = NaivePolicy().execute_day(test_day).energy(MODEL)
        batched = BatchPolicy(5).execute_day(test_day).energy(MODEL)
        assert batched.energy_j < base.energy_j

    def test_payload_conserved(self, test_day):
        BatchPolicy(4).execute_day(test_day).validate_payload(test_day)

    def test_negative_batch_rejected(self):
        with pytest.raises(ValueError):
            BatchPolicy(-1)


class TestDelayBatchPolicy:
    def test_screen_on_flush_rides_session(self):
        outcome = DelayBatchPolicy(36000.0).execute_day(_burst_day())
        moved = [a for a in outcome.activities if not a.screen_on]
        # All three syncs wait for the session at 40000 (within timeout).
        assert all(a.time >= 40000.0 for a in moved)

    def test_timeout_release_without_session(self):
        outcome = DelayBatchPolicy(60.0).execute_day(_burst_day())
        moved = sorted(
            (a for a in outcome.activities if not a.screen_on), key=lambda a: a.time
        )
        assert moved[0].time == pytest.approx(10060.0)

    def test_fast_dormancy_tails(self):
        outcome = DelayBatchPolicy(60.0).execute_day(_burst_day())
        assert outcome.activity_tails is not None
        # Deferred items carry the fast-dormancy tail; foreground stays inf.
        finite = [t for t in outcome.activity_tails if not math.isinf(t)]
        assert len(finite) == 3

    def test_fast_dormancy_optional(self):
        outcome = DelayBatchPolicy(60.0, fast_dormancy_s=None).execute_day(_burst_day())
        assert outcome.activity_tails is None

    def test_saves_energy(self, test_day):
        base = NaivePolicy().execute_day(test_day).energy(MODEL)
        db = DelayBatchPolicy(60.0).execute_day(test_day).energy(MODEL)
        assert db.energy_j < base.energy_j

    def test_weaker_than_full_tail_elimination(self, test_day, history):
        """Delay&batch saves something but far less than NetMaster."""
        from repro.baselines import NetMasterPolicy

        base = NaivePolicy().execute_day(test_day).energy(MODEL).energy_j
        db = DelayBatchPolicy(60.0).execute_day(test_day).energy(MODEL).energy_j
        nm = NetMasterPolicy(history).execute_day(test_day).energy(MODEL).energy_j
        assert nm < db < base

    def test_payload_conserved(self, test_day):
        DelayBatchPolicy(20.0).execute_day(test_day).validate_payload(test_day)

    def test_validation(self):
        with pytest.raises(ValueError):
            DelayBatchPolicy(0.0)
