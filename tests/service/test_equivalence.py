"""Acceptance gate: the HTTP surface equals driving the fleet library
directly — FleetService, ShardedFleetService, and across a
checkpoint/restore cycle performed through the endpoints."""

from __future__ import annotations

import json
from pathlib import Path

from repro.stream.fleet import FleetService, FleetUserSpec
from repro.stream.shards import ShardConfig, ShardedFleetService
from repro.stream.ingest import stream_trace

from tests.service.conftest import service_config
from tests.service.test_http_surface import batch_doc, drive_http


def specs_of(traces) -> list[FleetUserSpec]:
    return [
        FleetUserSpec(
            user_id=t.user_id,
            n_days=t.n_days,
            start_weekday=t.start_weekday,
            trace=t,
        )
        for t in traces
    ]


def assert_savings_match_summary(savings: dict, summary) -> None:
    assert savings["energy_j"] == summary.energy_j
    assert savings["radio_on_s"] == summary.radio_on_s
    assert savings["interrupts"] == summary.interrupts
    assert savings["user_interactions"] == summary.user_interactions
    assert savings["deferred"] == summary.deferred
    assert savings["days_executed"] == summary.days_executed
    assert savings["events"] == summary.events
    assert savings["checkpoints"] == summary.checkpoints


def test_http_equals_fleet_service(server, service_traces):
    config = service_config()
    result = FleetService(config).run(specs_of(service_traces), jobs=1)
    for trace in service_traces:
        drive_http(server, trace, batch_size=900)
    for trace, summary in zip(service_traces, result.summaries):
        assert summary.user_id == trace.user_id
        _, savings = server.request(
            "GET", f"/v1/users/{trace.user_id}/savings"
        )
        assert_savings_match_summary(savings, summary)


def test_http_equals_sharded_fleet_service(make_server, service_traces,
                                           tmp_path):
    config = service_config()
    sharded = ShardedFleetService(
        config, shards=ShardConfig(root=tmp_path / "shards", n_shards=2)
    )
    result = sharded.run(specs_of(service_traces), jobs=1)
    server = make_server(config)
    for trace in service_traces:
        drive_http(server, trace, batch_size=900)
    by_user = {s.user_id: s for s in result.summaries}
    for trace in service_traces:
        _, savings = server.request(
            "GET", f"/v1/users/{trace.user_id}/savings"
        )
        assert_savings_match_summary(savings, by_user[trace.user_id])


def test_checkpoint_restore_through_endpoints(make_server, service_trace,
                                              tmp_path):
    """Half the stream, POST /v1/checkpoint, restore on a *new* server,
    second half there — byte-equal to one uninterrupted server."""
    records = list(stream_trace(service_trace))
    cut = len(records) // 2
    path = str(tmp_path / "service-ckpt.json")
    uid = service_trace.user_id

    straight = make_server()
    drive_http(straight, service_trace, batch_size=800)
    _, straight_dec = straight.request("GET", f"/v1/users/{uid}/decisions")
    _, straight_sav = straight.request("GET", f"/v1/users/{uid}/savings")

    first = make_server(checkpoint_dir=tmp_path)
    status, _ = first.request(
        "POST", f"/v1/users/{uid}/events",
        batch_doc(service_trace, records[:cut]),
    )
    assert status == 200
    status, doc = first.request("POST", "/v1/checkpoint", {"path": path})
    assert status == 200
    assert Path(doc["path"]) == (tmp_path / "service-ckpt.json").resolve()
    assert doc["bytes"] > 0

    second = make_server(checkpoint_dir=tmp_path)
    status, doc = second.request("POST", "/v1/restore", {"path": path})
    assert status == 200
    assert doc["users"] == 1
    status, _ = second.request(
        "POST", f"/v1/users/{uid}/events",
        batch_doc(service_trace, records[cut:]),
    )
    assert status == 200
    status, _ = second.request(
        "POST", f"/v1/users/{uid}/finish", {"n_days": service_trace.n_days}
    )
    assert status == 200

    _, resumed_dec = second.request("GET", f"/v1/users/{uid}/decisions")
    _, resumed_sav = second.request("GET", f"/v1/users/{uid}/savings")
    assert json.dumps(resumed_dec) == json.dumps(straight_dec)
    assert json.dumps(resumed_sav) == json.dumps(straight_sav)


def test_checkpoint_without_path_is_400(make_server):
    server = make_server()  # no --checkpoint configured
    status, doc = server.request("POST", "/v1/checkpoint")
    assert status == 400
    assert doc["error"]["code"] == "no-checkpoint-path"


def test_restore_missing_file_is_400_and_corrupt_is_409(make_server,
                                                        tmp_path):
    server = make_server(checkpoint_dir=tmp_path)
    status, doc = server.request(
        "POST", "/v1/restore", {"path": str(tmp_path / "absent.json")}
    )
    assert status == 400
    bad = tmp_path / "bad.json"
    bad.write_text("{ nope", encoding="utf-8")
    status, doc = server.request("POST", "/v1/restore", {"path": str(bad)})
    assert status == 409
    assert doc["error"]["code"] == "bad-checkpoint"


def test_client_paths_forbidden_without_checkpoint_dir(make_server, tmp_path):
    """No --checkpoint-dir: a client-supplied path is a 403, both ways."""
    server = make_server()
    for endpoint in ("/v1/checkpoint", "/v1/restore"):
        status, doc = server.request(
            "POST", endpoint, {"path": str(tmp_path / "x.json")}
        )
        assert status == 403
        assert doc["error"]["code"] == "path-forbidden"


def test_client_path_escaping_checkpoint_dir_is_403(make_server, tmp_path):
    """Absolute and ../-relative escapes are rejected after resolution;
    paths inside the directory (relative or absolute) are honoured."""
    root = tmp_path / "ckpts"
    root.mkdir()
    server = make_server(checkpoint_dir=root)
    for escape in (
        str(tmp_path / "outside.json"),  # absolute, outside the root
        "../outside.json",               # relative traversal
        "a/../../outside.json",          # nested traversal
    ):
        status, doc = server.request("POST", "/v1/checkpoint", {"path": escape})
        assert status == 403, escape
        assert doc["error"]["code"] == "path-forbidden"
        assert not (tmp_path / "outside.json").exists()
    status, doc = server.request("POST", "/v1/checkpoint", {"path": "in.json"})
    assert status == 200
    assert Path(doc["path"]) == (root / "in.json").resolve()
