"""The HTTP surface: status codes, error bodies, health, metrics,
and concurrent clients versus the serial library run."""

from __future__ import annotations

import json
import socket
import threading

from repro.service.gateway import reference_decisions
from repro.service.schemas import record_to_doc
from repro.stream.ingest import stream_trace

from tests.service.conftest import service_config


def batch_doc(trace, records) -> dict:
    return {
        "events": [record_to_doc(r) for r in records],
        "start_weekday": trace.start_weekday,
    }


def drive_http(server, trace, *, batch_size=None) -> None:
    records = list(stream_trace(trace))
    size = batch_size or len(records)
    for i in range(0, len(records), size):
        status, doc = server.request(
            "POST",
            f"/v1/users/{trace.user_id}/events",
            batch_doc(trace, records[i : i + size]),
        )
        assert status == 200, doc
    status, doc = server.request(
        "POST", f"/v1/users/{trace.user_id}/finish", {"n_days": trace.n_days}
    )
    assert status == 200, doc


def test_lifecycle_matches_reference(server, service_trace):
    drive_http(server, service_trace, batch_size=700)
    status, decisions = server.request(
        "GET", f"/v1/users/{service_trace.user_id}/decisions"
    )
    assert status == 200
    status, savings = server.request(
        "GET", f"/v1/users/{service_trace.user_id}/savings"
    )
    assert status == 200
    ref = reference_decisions(service_trace, config=service_config())
    assert json.dumps(decisions) == json.dumps(ref["decisions"])
    assert json.dumps(savings) == json.dumps(ref["savings"])

    status, users = server.request("GET", "/v1/users")
    assert status == 200
    assert users == {"users": [service_trace.user_id]}


def test_malformed_json_is_400(server):
    status, doc = server.request(
        "POST", "/v1/users/u1/events", raw_body=b"{not json",
    )
    assert status == 400
    assert doc["error"]["code"] == "bad-json"
    # Valid JSON, invalid schema -> still 400, different tag.
    status, doc = server.request("POST", "/v1/users/u1/events", {"bogus": 1})
    assert status == 400
    assert doc["error"]["code"] == "bad-request"


def test_unknown_user_is_404(server):
    status, doc = server.request("GET", "/v1/users/stranger/savings")
    assert status == 404
    assert doc["error"]["code"] == "unknown-user"
    status, doc = server.request("GET", "/v1/users/stranger/decisions")
    assert status == 404


def test_unknown_route_and_wrong_method(server):
    status, doc = server.request("GET", "/v1/nope")
    assert status == 404
    assert doc["error"]["code"] == "not-found"
    status, doc = server.request("PUT", "/health")
    assert status == 405
    assert doc["error"]["code"] == "method-not-allowed"


def test_oversized_body_is_413(make_server):
    server = make_server(max_body_bytes=1024)
    status, doc = server.request(
        "POST", "/v1/users/u1/events", raw_body=b"x" * 2048
    )
    assert status == 413
    assert doc["error"]["code"] == "body-too-large"


def raw_exchange(server, payload: bytes) -> bytes:
    """Send raw bytes, read until the server closes the connection."""
    with socket.create_connection((server.host, server.port),
                                  timeout=30) as sock:
        sock.sendall(payload)
        chunks = []
        while chunk := sock.recv(65536):
            chunks.append(chunk)
    return b"".join(chunks)


def test_transfer_encoding_is_rejected(server):
    """Chunked bodies would desync the keep-alive stream (the parser
    only speaks Content-Length), so they are refused with 400+close —
    the smuggling payload never parses as a pipelined request."""
    response = raw_exchange(
        server,
        b"POST /v1/checkpoint HTTP/1.1\r\n"
        b"Host: t\r\n"
        b"Transfer-Encoding: chunked\r\n"
        b"\r\n"
        b"2\r\nhi\r\n0\r\n\r\n"
        # A smuggled pipelined request: must never be answered.
        b"GET /health HTTP/1.1\r\nHost: t\r\n\r\n",
    )
    assert response.startswith(b"HTTP/1.1 400 ")
    assert b"Transfer-Encoding is not supported" in response
    assert response.count(b"HTTP/1.1 ") == 1  # connection closed after the 400


def test_duplicate_content_length_is_rejected(server):
    response = raw_exchange(
        server,
        b"GET /health HTTP/1.1\r\n"
        b"Host: t\r\n"
        b"Content-Length: 0\r\n"
        b"Content-Length: 5\r\n"
        b"\r\n",
    )
    assert response.startswith(b"HTTP/1.1 400 ")
    assert b"duplicate Content-Length" in response


def test_out_of_order_batch_is_409(server, service_trace):
    records = list(stream_trace(service_trace))
    status, _ = server.request(
        "POST",
        f"/v1/users/{service_trace.user_id}/events",
        batch_doc(service_trace, records[:300]),
    )
    assert status == 200
    status, doc = server.request(
        "POST",
        f"/v1/users/{service_trace.user_id}/events",
        batch_doc(service_trace, records[:10]),
    )
    assert status == 409
    assert doc["error"]["code"] == "causality"
    assert "stream went backwards" in doc["error"]["message"]
    # The rejection was atomic: the stream continues from where it was.
    status, after = server.request(
        "POST",
        f"/v1/users/{service_trace.user_id}/events",
        batch_doc(service_trace, records[300:600]),
    )
    assert status == 200
    assert after["events"] == 600


def test_exhausted_budget_is_429(make_server, service_trace):
    server = make_server(service_config(event_budget=50))
    records = list(stream_trace(service_trace))
    status, _ = server.request(
        "POST",
        f"/v1/users/{service_trace.user_id}/events",
        batch_doc(service_trace, records[:50]),
    )
    assert status == 200
    status, doc = server.request(
        "POST",
        f"/v1/users/{service_trace.user_id}/events",
        batch_doc(service_trace, records[50:60]),
    )
    assert status == 429
    assert doc["error"]["code"] == "overloaded"


def test_health_and_metrics(server, service_trace):
    status, health = server.request("GET", "/health")
    assert status == 200
    assert health["status"] == "ok"
    assert health["users"] == 0
    # The registry is process-wide (other tests feed it too), so counter
    # assertions are deltas around this server's traffic.
    _, before = server.request("GET", "/metrics")
    ingested_before = before["overall"]["counters"].get(
        "service.events_ingested", 0
    )
    drive_http(server, service_trace)
    status, health = server.request("GET", "/health")
    assert health["users"] == 1
    assert health["events"] > 0
    assert health["days_executed"] > 0

    status, doc = server.request("GET", "/metrics")
    assert status == 200
    assert doc["schema"] == 1
    counters = doc["overall"]["counters"]
    assert counters["service.req.ingest"] >= 1
    assert counters["service.req.health"] >= 2
    assert (
        counters["service.events_ingested"] - ingested_before
        == health["events"]
    )
    latency = doc["overall"]["histograms"]["service.latency_s.ingest"]
    assert latency["count"] >= 1
    assert latency["sum_micro"] > 0
    # Fleet-scale instruments are pre-registered by the gateway so they
    # appear in /metrics even before any fleet run spills or batches.
    assert "fleet.summaries_spilled" in counters
    gauges = doc["overall"]["gauges"]
    assert gauges["fleet.active_users"] >= 1
    assert gauges["fleet.peak_rss_bytes"] > 0


def test_concurrent_clients_equal_serial_library_run(server, service_traces):
    """Three clients race their own users; every result equals the
    single-threaded library drive."""
    errors: list = []

    def client(trace) -> None:
        try:
            drive_http(server, trace, batch_size=500)
        except Exception as exc:  # surfaced below
            errors.append((trace.user_id, exc))

    threads = [
        threading.Thread(target=client, args=(trace,))
        for trace in service_traces
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not errors
    config = service_config()
    for trace in service_traces:
        _, decisions = server.request(
            "GET", f"/v1/users/{trace.user_id}/decisions"
        )
        _, savings = server.request(
            "GET", f"/v1/users/{trace.user_id}/savings"
        )
        ref = reference_decisions(trace, config=config)
        assert json.dumps(decisions) == json.dumps(ref["decisions"])
        assert json.dumps(savings) == json.dumps(ref["savings"])
