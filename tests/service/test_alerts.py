"""``GET /v1/alerts`` and the gateway's monitor wiring."""

from __future__ import annotations

import json

from repro.monitor import MonitorConfig
from repro.service.gateway import FleetGateway, reference_decisions
from repro.stream.ingest import stream_trace

from tests.service.conftest import service_config
from tests.service.test_http_surface import drive_http


def _drive(gw: FleetGateway, trace) -> None:
    gw.ingest(
        trace.user_id,
        list(stream_trace(trace)),
        start_weekday=trace.start_weekday,
    )
    gw.finish(trace.user_id, trace.n_days)


class TestAlertsEndpoint:
    def test_stable_shape_with_monitoring_off(self, server):
        status, doc = server.request("GET", "/v1/alerts")
        assert status == 200
        assert doc == {
            "monitoring": False,
            "published": 0,
            "by_kind": {},
            "sink_errors": 0,
            "quarantined_users": 0,
            "alerts": [],
        }

    def test_monitored_server_reports_and_stays_quiet(
        self, make_server, service_trace
    ):
        server = make_server(service_config(monitor=MonitorConfig()))
        drive_http(server, service_trace, batch_size=700)
        status, doc = server.request("GET", "/v1/alerts")
        assert status == 200
        assert doc["monitoring"] is True
        # The generated volunteer is clean: the monitor must stay quiet.
        assert doc["published"] == 0
        assert doc["alerts"] == []
        assert doc["quarantined_users"] == 0
        # And quiet means no-op: decisions match the unmonitored drive.
        status, decisions = server.request(
            "GET", f"/v1/users/{service_trace.user_id}/decisions"
        )
        ref = reference_decisions(service_trace, config=service_config())
        assert json.dumps(decisions) == json.dumps(ref["decisions"])

    def test_alerts_route_rejects_other_methods(self, server):
        status, doc = server.request("POST", "/v1/alerts", {})
        assert status == 405


class TestGatewayMonitorState:
    def test_monitor_state_survives_checkpoint_roundtrip(
        self, tmp_path, service_trace
    ):
        config = service_config(monitor=MonitorConfig())
        gw = FleetGateway(config)
        _drive(gw, service_trace)
        path = tmp_path / "service.ckpt"
        gw.checkpoint(path)

        restored = FleetGateway(config)
        restored.restore(path)
        original = gw.session(service_trace.user_id).monitor
        back = restored.session(service_trace.user_id).monitor
        assert original is not None and back is not None
        assert json.dumps(back.state_dict(), sort_keys=True) == json.dumps(
            original.state_dict(), sort_keys=True
        )
        assert restored.alerts_doc()["monitoring"] is True

    def test_unmonitored_checkpoint_carries_no_monitor_key(
        self, tmp_path, service_trace
    ):
        # The byte-compat guarantee: this feature existing must not
        # change the checkpoint document of an unmonitored gateway.
        gw = FleetGateway(service_config())
        _drive(gw, service_trace)
        state = gw.state_dict()
        assert all("monitor" not in doc for doc in state["users"].values())

    def test_quiet_monitor_leaves_checkpoint_engine_state_equal(
        self, tmp_path, service_trace
    ):
        plain = FleetGateway(service_config())
        _drive(plain, service_trace)
        monitored = FleetGateway(service_config(monitor=MonitorConfig()))
        _drive(monitored, service_trace)
        plain_doc = plain.state_dict()["users"][service_trace.user_id]
        mon_doc = monitored.state_dict()["users"][service_trace.user_id]
        mon_doc.pop("monitor")  # attached, hence serialized — but quiet
        assert json.dumps(mon_doc, sort_keys=True) == json.dumps(
            plain_doc, sort_keys=True
        )
