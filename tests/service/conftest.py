"""Shared fixtures for the fleet-service test suite.

The server runs in a background thread with its own asyncio loop;
tests talk to it synchronously over real sockets with stdlib
``http.client``.  No async test framework required.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading

import pytest

from repro.core.netmaster import NetMasterConfig
from repro.service.gateway import FleetGateway
from repro.service.http import ServiceApp
from repro.stream.fleet import FleetConfig
from repro.traces.generator import generate_volunteers

#: 9-day traces over a 5-day training horizon: 4 causally executed days
#: per user, small enough to stream in well under a second.
N_DAYS = 9
TRAIN_DAYS = 5


def service_config(**overrides) -> FleetConfig:
    """The deterministic config every service test runs under."""
    base = dict(
        train_days=TRAIN_DAYS,
        checkpoint_every_days=2,
        netmaster=NetMasterConfig(enable_circuit_breaker=False),
    )
    base.update(overrides)
    return FleetConfig(**base)


@pytest.fixture(scope="session")
def service_traces():
    """The three evaluation volunteers, shortened to the test horizon."""
    return generate_volunteers(N_DAYS, seed=43)


@pytest.fixture(scope="session")
def service_trace(service_traces):
    return service_traces[0]


class ServerHandle:
    """One live server: address + a synchronous request helper."""

    def __init__(self, app: ServiceApp, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.app = app
        self.loop = loop
        self.thread = thread
        assert app.address is not None
        self.host, self.port = app.address

    def request(
        self,
        method: str,
        path: str,
        doc: object | None = None,
        *,
        raw_body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict]:
        """One request over a fresh connection; returns (status, json)."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=60)
        try:
            body = raw_body
            if body is None and doc is not None:
                body = json.dumps(doc).encode("utf-8")
            conn.request(method, path, body=body, headers=headers or {})
            resp = conn.getresponse()
            return resp.status, json.loads(resp.read())
        finally:
            conn.close()

    def stop(self) -> None:
        if not self.loop.is_running():
            return
        asyncio.run_coroutine_threadsafe(
            self.app.shutdown(reason="test teardown"), self.loop
        ).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)


@pytest.fixture
def make_server():
    """Factory: spin up a service in a background thread, torn down after."""
    handles: list[ServerHandle] = []

    def factory(config: FleetConfig | None = None, **app_kwargs) -> ServerHandle:
        ready = threading.Event()
        holder: dict = {}

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            app = ServiceApp(
                FleetGateway(config or service_config()), **app_kwargs
            )
            loop.run_until_complete(app.start("127.0.0.1", 0))
            holder["loop"], holder["app"] = loop, app
            ready.set()
            loop.run_forever()
            # Drain cancelled tasks so the loop closes without warnings.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(timeout=30), "service failed to start"
        handle = ServerHandle(holder["app"], holder["loop"], thread)
        handles.append(handle)
        return handle

    yield factory
    for handle in handles:
        handle.stop()


@pytest.fixture
def server(make_server) -> ServerHandle:
    """One server under the default deterministic test config."""
    return make_server()
