"""The wire-document layer: parse/render round trips and rejections."""

from __future__ import annotations

import pytest

from repro.service.schemas import (
    MAX_BATCH_EVENTS,
    SchemaError,
    parse_checkpoint,
    parse_event_batch,
    parse_finish,
    record_to_doc,
    saving_of,
)
from repro.stream.ingest import stream_trace
from repro.traces.events import AppUsage, NetworkActivity, ScreenSession


def test_event_batch_round_trip(service_trace):
    records = list(stream_trace(service_trace))
    doc = {
        "events": [record_to_doc(r) for r in records],
        "start_weekday": service_trace.start_weekday,
    }
    parsed, weekday = parse_event_batch(doc)
    assert weekday == service_trace.start_weekday
    assert parsed == records


def test_record_to_doc_covers_all_kinds():
    assert record_to_doc(ScreenSession(10.0, 20.0))["kind"] == "screen"
    assert record_to_doc(AppUsage(5.0, "mail", 3.0))["kind"] == "usage"
    net = record_to_doc(NetworkActivity(7.0, "sync", 100, 50, 2.0, False))
    assert net["kind"] == "network"
    assert net["screen_on"] is False
    with pytest.raises(TypeError):
        record_to_doc("not a record")


@pytest.mark.parametrize(
    "doc",
    [
        "not an object",
        {},
        {"events": "nope"},
        {"events": [], "start_weekday": 7},
        {"events": [], "start_weekday": "mon"},
        {"events": ["not an object"]},
        {"events": [{"kind": "mystery"}]},
        {"events": [{"kind": "screen", "start": 1.0}]},
    ],
)
def test_bad_event_batches_raise_schema_error(doc):
    with pytest.raises(SchemaError):
        parse_event_batch(doc)


def test_oversized_batch_rejected():
    record = {"kind": "usage", "time": 0.0, "app": "a", "duration": 1.0}
    with pytest.raises(SchemaError, match="cap"):
        parse_event_batch({"events": [record] * (MAX_BATCH_EVENTS + 1)})


def test_parse_finish():
    assert parse_finish({"n_days": 9}) == 9
    for bad in ({}, {"n_days": 0}, {"n_days": -3}, {"n_days": "many"}, []):
        with pytest.raises(SchemaError):
            parse_finish(bad)


def test_parse_checkpoint():
    assert parse_checkpoint(None) is None
    assert parse_checkpoint({}) is None
    assert parse_checkpoint({"path": "x.json"}) == "x.json"
    with pytest.raises(SchemaError):
        parse_checkpoint({"path": ""})
    with pytest.raises(SchemaError):
        parse_checkpoint({"path": 3})


def test_saving_of():
    assert saving_of(50.0, 100.0) == 0.5
    assert saving_of(1.0, 0.0) == 0.0
