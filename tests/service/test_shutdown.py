"""Graceful shutdown: the final checkpoint, and byte-identical restarts
across a real SIGTERM delivered to a real server process."""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service.gateway import FleetGateway, reference_decisions
from repro.service.schemas import record_to_doc
from repro.stream.ingest import stream_trace

from tests.service.conftest import TRAIN_DAYS, service_config
from tests.service.test_http_surface import batch_doc

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def test_teardown_writes_final_checkpoint(make_server, service_trace,
                                          tmp_path):
    path = tmp_path / "final.json"
    server = make_server(checkpoint_path=path)
    records = list(stream_trace(service_trace))
    status, _ = server.request(
        "POST", f"/v1/users/{service_trace.user_id}/events",
        batch_doc(service_trace, records[:800]),
    )
    assert status == 200
    server.stop()  # shutdown() drains the queue, then checkpoints
    assert path.exists()
    restored = FleetGateway(service_config())
    restored.restore(path)
    assert restored.user_ids() == [service_trace.user_id]
    assert restored.session(service_trace.user_id).engine.events == 800


def test_shutdown_with_idle_keepalive_connection(make_server, tmp_path):
    """An idle keep-alive client must not deadlock shutdown (on Python
    >= 3.12.1 ``Server.wait_closed`` blocks until every connection
    handler returns, and an idle handler sits in ``readline`` forever
    unless shutdown closes its transport first)."""
    path = tmp_path / "final.json"
    server = make_server(checkpoint_path=path)
    idle = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        idle.request("GET", "/health")
        resp = idle.getresponse()
        resp.read()
        assert resp.status == 200
        # The connection stays open; stop() raises TimeoutError if
        # shutdown() hangs waiting on it.
        server.stop()
        assert path.exists()
    finally:
        idle.close()


# ----------------------------------------------------------------------
# subprocess SIGTERM round trip
# ----------------------------------------------------------------------


def _spawn_server(args: list[str]) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ, PYTHONPATH=REPO_SRC, PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--train-days", str(TRAIN_DAYS), "--checkpoint-every", "2", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    assert proc.stdout is not None
    line = proc.stdout.readline()
    if not line:
        proc.wait(timeout=10)
        raise AssertionError(
            f"server died before the ready line: {proc.stderr.read()}"
        )
    assert line.startswith("repro-service listening on "), line
    port = int(line.rsplit(":", 1)[1])
    return proc, port


def _request(port: int, method: str, path: str, doc=None,
             attempts: int = 3) -> tuple[int, dict]:
    for attempt in range(attempts):
        try:
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
            try:
                body = None if doc is None else json.dumps(doc).encode()
                conn.request(method, path, body=body)
                resp = conn.getresponse()
                return resp.status, json.loads(resp.read())
            finally:
                conn.close()
        except ConnectionError:
            if attempt == attempts - 1:
                raise
            time.sleep(0.2)
    raise AssertionError("unreachable")


def test_unreadable_restore_path_exits_cleanly(tmp_path):
    """``serve --restore missing.json`` is a clean exit-2 diagnostic,
    not a traceback (the gateway surfaces the OSError as SchemaError)."""
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--restore", str(tmp_path / "absent.json")],
        capture_output=True, text=True, env=env, timeout=60,
    )
    assert proc.returncode == 2
    assert proc.stderr.startswith("serve: ")
    assert "Traceback" not in proc.stderr


@pytest.mark.slow
def test_sigterm_then_restart_resumes_byte_identically(service_trace,
                                                       tmp_path):
    ckpt = str(tmp_path / "sig.json")
    records = list(stream_trace(service_trace))
    cut = len(records) // 2
    uid = service_trace.user_id

    proc, port = _spawn_server(["--checkpoint", ckpt])
    try:
        status, _ = _request(
            port, "POST", f"/v1/users/{uid}/events",
            batch_doc(service_trace, records[:cut]),
        )
        assert status == 200
        # Hold an idle keep-alive connection across the signal: the
        # shutdown path must close it rather than wait on it.
        idle = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        idle.request("GET", "/health")
        idle.getresponse().read()
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=60)
        idle.close()
        assert proc.returncode == 0, err
        assert "final checkpoint written" in err
        assert Path(ckpt).exists()
    finally:
        if proc.poll() is None:
            proc.kill()

    proc, port = _spawn_server(["--restore", ckpt])
    try:
        status, _ = _request(
            port, "POST", f"/v1/users/{uid}/events",
            batch_doc(service_trace, records[cut:]),
        )
        assert status == 200
        status, _ = _request(
            port, "POST", f"/v1/users/{uid}/finish",
            {"n_days": service_trace.n_days},
        )
        assert status == 200
        _, decisions = _request(port, "GET", f"/v1/users/{uid}/decisions")
        _, savings = _request(port, "GET", f"/v1/users/{uid}/savings")
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()

    # The CLI disables the circuit breaker and uses checkpoint-every 2 —
    # mirror it exactly for the reference run.
    ref = reference_decisions(
        service_trace,
        config=service_config(train_days=TRAIN_DAYS, checkpoint_every_days=2),
    )
    assert json.dumps(decisions) == json.dumps(ref["decisions"])
    assert json.dumps(savings) == json.dumps(ref["savings"])
