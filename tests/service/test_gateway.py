"""The single-writer service core: parity, atomicity, retention, state."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive import NaivePolicy
from repro.evaluation.metrics import measure_outcome
from repro.service.gateway import (
    CausalityError,
    FleetGateway,
    ServiceOverloadError,
    UnknownUserError,
    reference_decisions,
)
from repro.service.schemas import SchemaError
from repro.stream.fleet import stream_one_user
from repro.stream.ingest import stream_trace
from repro.stream.online_netmaster import CheckpointError, OnlineNetMaster

from tests.service.conftest import service_config


def drive(gateway: FleetGateway, trace, *, batches=None) -> None:
    """Stream a whole trace through the gateway and close it."""
    records = list(stream_trace(trace))
    if batches is None:
        batches = [records]
    else:
        assert sum(len(b) for b in batches) == len(records)
    for batch in batches:
        gateway.ingest(
            trace.user_id, batch, start_weekday=trace.start_weekday
        )
    gateway.finish(trace.user_id, trace.n_days)


def test_savings_match_hand_rolled_engine(service_trace):
    """Independent oracle: a bare engine + measure_outcome, no gateway."""
    config = service_config(checkpoint_every_days=None)
    engine = OnlineNetMaster(
        service_trace.user_id,
        config=config.netmaster,
        start_weekday=service_trace.start_weekday,
        train_days=config.train_days,
    )
    energy = naive_energy = 0.0
    days = 0
    for record in stream_trace(service_trace):
        engine.observe(record)
        for day in engine.drain():
            energy += measure_outcome(
                day.outcome(), config.netmaster.power, day.trace
            ).energy_j
            naive_energy += measure_outcome(
                NaivePolicy().execute_day(day.trace),
                config.netmaster.power,
                day.trace,
            ).energy_j
            days += 1
    for day in engine.finish(service_trace.n_days):
        energy += measure_outcome(
            day.outcome(), config.netmaster.power, day.trace
        ).energy_j
        naive_energy += measure_outcome(
            NaivePolicy().execute_day(day.trace),
            config.netmaster.power,
            day.trace,
        ).energy_j
        days += 1

    gateway = FleetGateway(config)
    drive(gateway, service_trace)
    savings = gateway.savings(service_trace.user_id)
    assert days > 0
    assert savings["days_executed"] == days
    assert savings["energy_j"] == energy
    assert savings["naive_energy_j"] == naive_energy


def test_aggregates_byte_equal_stream_one_user(service_traces):
    """The acceptance gate: gateway totals == library drive, bit for bit."""
    config = service_config()
    for trace in service_traces:
        lib = stream_one_user(trace, config=config)
        gateway = FleetGateway(config)
        drive(gateway, trace)
        savings = gateway.savings(trace.user_id)
        assert savings["energy_j"] == lib.energy_j
        assert savings["radio_on_s"] == lib.radio_on_s
        assert savings["interrupts"] == lib.interrupts
        assert savings["user_interactions"] == lib.user_interactions
        assert savings["deferred"] == lib.deferred
        assert savings["days_executed"] == lib.days_executed
        assert savings["checkpoints"] == lib.checkpoints
        assert savings["degraded_days"] == lib.degraded_days


@settings(max_examples=8, deadline=None)
@given(batch_size=st.integers(min_value=1, max_value=4000))
def test_batch_split_invariance(service_trace, batch_size):
    """Decisions are independent of how the stream is cut into batches."""
    config = service_config()
    records = list(stream_trace(service_trace))
    batches = [
        records[i : i + batch_size] for i in range(0, len(records), batch_size)
    ]
    gateway = FleetGateway(config)
    drive(gateway, service_trace, batches=batches)
    got = {
        "decisions": gateway.decisions(service_trace.user_id),
        "savings": gateway.savings(service_trace.user_id),
    }
    ref = reference_decisions(service_trace, config=config)
    assert json.dumps(got) == json.dumps(ref)


def test_out_of_order_batch_rejected_atomically(service_trace):
    config = service_config()
    gateway = FleetGateway(config)
    records = list(stream_trace(service_trace))
    gateway.ingest(
        service_trace.user_id, records[:500],
        start_weekday=service_trace.start_weekday,
    )
    before = json.dumps(gateway.state_dict())
    # A batch that starts fine but travels back in time mid-way.
    bad = records[500:510] + records[100:110]
    with pytest.raises(CausalityError, match="stream went backwards"):
        gateway.ingest(service_trace.user_id, bad)
    assert json.dumps(gateway.state_dict()) == before  # nothing leaked


def test_unknown_user_raises():
    gateway = FleetGateway(service_config())
    with pytest.raises(UnknownUserError):
        gateway.decisions("stranger")
    with pytest.raises(UnknownUserError):
        gateway.savings("stranger")
    with pytest.raises(UnknownUserError):
        gateway.finish("stranger", 9)


def test_event_budget_sheds_batches(service_trace):
    records = list(stream_trace(service_trace))
    gateway = FleetGateway(service_config(event_budget=100))
    gateway.ingest(service_trace.user_id, records[:100])
    with pytest.raises(ServiceOverloadError):
        gateway.ingest(service_trace.user_id, records[100:110])
    assert gateway.events_total == 100


def test_retention_bounds_memory_and_savings_stay_complete(service_trace):
    """Eviction drops day records but never the compacted aggregate."""
    full = FleetGateway(service_config())
    drive(full, service_trace)
    bounded = FleetGateway(service_config(retention_days=2))
    drive(bounded, service_trace)

    full_dec = full.decisions(service_trace.user_id)
    bounded_dec = bounded.decisions(service_trace.user_id)
    assert full_dec["evicted_days"] == 0
    assert len(bounded_dec["retained"]) == 2
    assert (
        bounded_dec["evicted_days"]
        == full_dec["days_executed"] - 2
    )
    # The retained window is the *newest* days, byte-equal to the full run.
    assert bounded_dec["retained"] == full_dec["retained"][-2:]
    # Savings read the aggregate: identical despite the eviction.
    full_sav = full.savings(service_trace.user_id)
    bounded_sav = bounded.savings(service_trace.user_id)
    for key in ("energy_j", "naive_energy_j", "saving", "radio_on_s",
                "interrupts", "deferred", "days_executed"):
        assert bounded_sav[key] == full_sav[key]
    assert bounded_sav["retained_days"] == 2
    assert bounded_sav["evicted_days"] == bounded_dec["evicted_days"]


def test_checkpoint_restore_resumes_byte_identically(service_trace, tmp_path):
    config = service_config()
    records = list(stream_trace(service_trace))
    cut = len(records) // 2

    straight = FleetGateway(config)
    drive(straight, service_trace)

    resumed = FleetGateway(config)
    resumed.ingest(
        service_trace.user_id, records[:cut],
        start_weekday=service_trace.start_weekday,
    )
    path = tmp_path / "service.json"
    resumed.checkpoint(path)
    fresh = FleetGateway(config)
    fresh.restore(path)
    fresh.ingest(service_trace.user_id, records[cut:])
    fresh.finish(service_trace.user_id, service_trace.n_days)

    assert json.dumps(fresh.decisions(service_trace.user_id)) == json.dumps(
        straight.decisions(service_trace.user_id)
    )
    assert json.dumps(fresh.savings(service_trace.user_id)) == json.dumps(
        straight.savings(service_trace.user_id)
    )


def test_restore_rejects_garbage(tmp_path):
    gateway = FleetGateway(service_config())
    with pytest.raises(SchemaError):
        gateway.restore(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{ truncated", encoding="utf-8")
    with pytest.raises(CheckpointError):
        gateway.restore(bad)
    wrong = tmp_path / "wrong.json"
    wrong.write_text(json.dumps({"format": 99, "users": {}}), encoding="utf-8")
    with pytest.raises(CheckpointError, match="format"):
        gateway.restore(wrong)
