"""The async load driver, plus the bench/CLI glue around it."""

from __future__ import annotations

import asyncio
import json

from repro.service.gateway import FleetGateway
from repro.service.http import ServiceApp
from repro.service.loadgen import LoadOptions, percentile, run_load
from repro.runtime.bench import compare_reports

from tests.service.conftest import service_config


def test_percentile_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile([], 0.5) == 0.0
    assert percentile(values, 0.5) == 2.0
    assert percentile(values, 0.95) == 4.0
    assert percentile([7.0], 0.99) == 7.0


def test_load_run_against_in_process_server():
    async def drive():
        app = ServiceApp(FleetGateway(service_config()))
        host, port = await app.start("127.0.0.1", 0)
        try:
            return await run_load(
                LoadOptions(
                    host=host, port=port, n_users=2, n_days=9,
                    concurrency=2, batch_events=400,
                )
            )
        finally:
            await app.shutdown(reason="test")

    report = asyncio.run(drive())
    assert report["errors"] == 0
    assert report["n_users"] == 2
    assert report["events"] > 0
    assert report["days_closed"] > 0
    assert report["service_events_per_s"] > 0
    assert 0 < report["latency_p50_s"] <= report["latency_p99_s"]
    assert report["health"]["status"] == "ok"
    assert report["health"]["users"] == 2
    assert report["metrics_counters"] > 0
    # The report must be JSON-serializable as-is (it lands in
    # BENCH_perf.json and --out files verbatim).
    json.dumps(report)


def test_compare_tolerates_baseline_without_service_section():
    fresh = {"service_load": {"service_events_per_s": 1000.0}}
    old_baseline = {"stream": {"stream_events_per_s": 1.0}}
    failures = compare_reports(
        {**fresh, "stream": {"stream_events_per_s": 1.0}}, old_baseline
    )
    assert failures == []


def test_compare_flags_service_regression():
    fresh = {"service_load": {"service_events_per_s": 100.0}}
    baseline = {"service_load": {"service_events_per_s": 1000.0}}
    failures = compare_reports(fresh, baseline)
    assert any("service_load" in f for f in failures)
