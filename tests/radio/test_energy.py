"""Tests for trace-level energy accounting."""

from __future__ import annotations

import pytest

from repro.radio import (
    activities_energy,
    activities_radio_intervals,
    activity_windows,
    compare_schedules,
    delta_e,
    isolated_activity_energy,
    trace_energy,
    wcdma_model,
)
from repro.traces import NetworkActivity

MODEL = wcdma_model()


def _act(t=100.0, dur=10.0, down=5000.0, up=1000.0, on=True):
    return NetworkActivity(t, "app", down, up, dur, on)


class TestActivityEnergy:
    def test_windows(self):
        acts = [_act(0.0), _act(100.0)]
        assert activity_windows(acts) == [(0.0, 10.0), (100.0, 110.0)]

    def test_single_activity(self):
        report = activities_energy([_act()], MODEL)
        assert report.energy_j == pytest.approx(MODEL.isolated_transfer_energy_j(10.0))

    def test_trace_energy_equals_activity_energy(self, tiny_trace):
        assert trace_energy(tiny_trace, MODEL).energy_j == pytest.approx(
            activities_energy(tiny_trace.activities, MODEL).energy_j
        )

    def test_radio_intervals(self):
        intervals = activities_radio_intervals([_act(0.0)], MODEL)
        assert intervals == [(0.0, 27.0)]

    def test_isolated_and_delta(self):
        act = _act(dur=8.0)
        assert isolated_activity_energy(act, MODEL) == pytest.approx(
            MODEL.isolated_transfer_energy_j(8.0)
        )
        assert delta_e(act, MODEL) == pytest.approx(MODEL.saved_energy_j(8.0))


class TestCompareSchedules:
    def test_batched_schedule_wins(self):
        before = [_act(0.0), _act(1000.0), _act(2000.0)]
        after = [a.moved_to(i * 11.0) for i, a in enumerate(before)]
        comparison = compare_schedules(before, after, MODEL)
        assert comparison.saving_fraction > 0.3
        assert comparison.radio_time_saving_fraction > 0.3

    def test_payload_conservation_enforced(self):
        before = [_act()]
        after = [_act(down=1.0)]
        with pytest.raises(ValueError, match="payload"):
            compare_schedules(before, after, MODEL)

    def test_identity_schedule_zero_saving(self):
        acts = [_act(0.0), _act(500.0)]
        comparison = compare_schedules(acts, acts, MODEL)
        assert comparison.saving_fraction == pytest.approx(0.0)

    def test_different_tail_policies(self):
        from repro.radio import TruncatedTail

        acts = [_act(0.0)]
        comparison = compare_schedules(
            acts, acts, MODEL, after_policy=TruncatedTail(0.5)
        )
        assert comparison.saving_fraction > 0.0
