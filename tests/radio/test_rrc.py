"""RRC state-machine tests, including Hypothesis invariants."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio import (
    FullTail,
    TruncatedTail,
    radio_on_intervals,
    simulate,
    wcdma_model,
)

MODEL = wcdma_model()


class TestSingleWindow:
    def test_empty(self):
        report = simulate([], MODEL)
        assert report.energy_j == 0.0
        assert report.window_count == 0

    def test_isolated_matches_g(self):
        report = simulate([(100.0, 110.0)], MODEL)
        assert report.energy_j == pytest.approx(MODEL.isolated_transfer_energy_j(10.0))
        assert report.promo_idle_count == 1
        assert report.promo_fach_count == 0

    def test_components(self):
        report = simulate([(0.0, 10.0)], MODEL)
        assert report.transfer_energy_j == pytest.approx(8.0)
        assert report.tail_energy_j == pytest.approx(MODEL.full_tail_energy_j)
        assert report.promo_energy_j == pytest.approx(MODEL.promo_idle_energy_j)
        assert report.transfer_s == 10.0
        assert report.tail_s == pytest.approx(17.0)

    def test_radio_on_time(self):
        report = simulate([(0.0, 10.0)], MODEL)
        assert report.radio_on_s == pytest.approx(10.0 + 17.0 + 2.0)


class TestGapRegimes:
    def test_short_gap_stays_dch(self):
        # Gap of 3 s < DCH tail (5 s): one promo, gap charged at DCH.
        report = simulate([(0.0, 10.0), (13.0, 20.0)], MODEL)
        assert report.promo_idle_count == 1
        assert report.promo_fach_count == 0
        # tail covers the 3 s gap at DCH power plus the final full tail.
        assert report.tail_s == pytest.approx(3.0 + 17.0)

    def test_medium_gap_fach_repromotion(self):
        # Gap of 10 s: 5 s DCH tail + 5 s FACH, then FACH->DCH promo.
        report = simulate([(0.0, 10.0), (20.0, 25.0)], MODEL)
        assert report.promo_idle_count == 1
        assert report.promo_fach_count == 1

    def test_long_gap_full_demotion(self):
        report = simulate([(0.0, 10.0), (100.0, 105.0)], MODEL)
        assert report.promo_idle_count == 2
        assert report.promo_fach_count == 0
        assert report.tail_s == pytest.approx(17.0 + 17.0)

    def test_two_isolated_equals_sum(self):
        single_a = simulate([(0.0, 10.0)], MODEL).energy_j
        single_b = simulate([(1000.0, 1005.0)], MODEL).energy_j
        both = simulate([(0.0, 10.0), (1000.0, 1005.0)], MODEL).energy_j
        assert both == pytest.approx(single_a + single_b)

    def test_overlapping_windows_merge(self):
        merged = simulate([(0.0, 10.0), (5.0, 15.0)], MODEL)
        single = simulate([(0.0, 15.0)], MODEL)
        assert merged.energy_j == pytest.approx(single.energy_j)
        assert merged.window_count == 1


class TestTailPolicies:
    def test_truncation_cuts_energy(self):
        full = simulate([(0.0, 10.0)], MODEL, FullTail())
        cut = simulate([(0.0, 10.0)], MODEL, TruncatedTail(1.0))
        assert cut.energy_j < full.energy_j
        assert cut.tail_s == pytest.approx(1.0)

    def test_zero_guard(self):
        cut = simulate([(0.0, 10.0)], MODEL, TruncatedTail(0.0))
        assert cut.tail_s == 0.0
        assert cut.energy_j == pytest.approx(8.0 + MODEL.promo_idle_energy_j)

    def test_truncation_forces_idle_promotions(self):
        # 10 s gap would stay FACH under full tails, but a 1 s guard
        # forces IDLE, so the second window pays a full promotion.
        report = simulate([(0.0, 10.0), (20.0, 25.0)], MODEL, TruncatedTail(1.0))
        assert report.promo_idle_count == 2

    def test_negative_guard_rejected(self):
        with pytest.raises(ValueError):
            TruncatedTail(-1.0)


class TestPerWindowTails:
    def test_matches_global_policies(self):
        windows = [(0.0, 5.0), (100.0, 104.0), (300.0, 301.0)]
        full = simulate(windows, MODEL)
        per_full = simulate(windows, MODEL, window_tails=[math.inf] * 3)
        assert per_full.energy_j == pytest.approx(full.energy_j)
        cut = simulate(windows, MODEL, TruncatedTail(0.5))
        per_cut = simulate(windows, MODEL, window_tails=[0.5] * 3)
        assert per_cut.energy_j == pytest.approx(cut.energy_j)

    def test_mixed_tails_between_extremes(self):
        windows = [(0.0, 5.0), (100.0, 104.0)]
        full = simulate(windows, MODEL).energy_j
        cut = simulate(windows, MODEL, TruncatedTail(0.0)).energy_j
        mixed = simulate(windows, MODEL, window_tails=[0.0, math.inf]).energy_j
        assert cut < mixed < full

    def test_merged_window_takes_last_ender_tail(self):
        # Overlapping windows: the one ending last carries the allowance.
        loose = simulate([(0.0, 5.0), (2.0, 10.0)], MODEL, window_tails=[0.0, math.inf])
        tight = simulate([(0.0, 5.0), (2.0, 10.0)], MODEL, window_tails=[math.inf, 0.0])
        assert loose.energy_j > tight.energy_j

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="match"):
            simulate([(0.0, 1.0)], MODEL, window_tails=[1.0, 2.0])

    def test_conflicting_policy_rejected(self):
        with pytest.raises(ValueError, match="combined"):
            simulate([(0.0, 1.0)], MODEL, TruncatedTail(1.0), window_tails=[1.0])

    def test_negative_tail_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            simulate([(0.0, 1.0)], MODEL, window_tails=[-1.0])


class TestRadioOnIntervals:
    def test_single_window_extended_by_tail(self):
        intervals = radio_on_intervals([(0.0, 10.0)], MODEL)
        assert intervals == [(0.0, 27.0)]

    def test_truncated(self):
        intervals = radio_on_intervals([(0.0, 10.0)], MODEL, TruncatedTail(1.0))
        assert intervals == [(0.0, 11.0)]

    def test_fusion_within_tail(self):
        intervals = radio_on_intervals([(0.0, 10.0), (15.0, 20.0)], MODEL)
        assert len(intervals) == 1

    def test_per_window_tails(self):
        intervals = radio_on_intervals(
            [(0.0, 10.0), (100.0, 110.0)], MODEL, window_tails=[0.0, 5.0]
        )
        assert intervals == [(0.0, 10.0), (100.0, 115.0)]


# ----------------------------------------------------------------------
# Hypothesis invariants
# ----------------------------------------------------------------------

window_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5000.0),
        st.floats(min_value=0.1, max_value=60.0),
    ).map(lambda p: (p[0], p[0] + p[1])),
    min_size=1,
    max_size=12,
)


@given(windows=window_lists)
@settings(max_examples=60, deadline=None)
def test_truncation_never_costs_more(windows):
    """Forcing the radio off early can only save energy and radio time."""
    full = simulate(windows, MODEL)
    cut = simulate(windows, MODEL, TruncatedTail(0.5))
    assert cut.energy_j <= full.energy_j + 1e-9
    assert cut.radio_on_s <= full.radio_on_s + 1e-9


@given(windows=window_lists)
@settings(max_examples=60, deadline=None)
def test_energy_positive_and_consistent(windows):
    """Energy decomposition always sums to the total."""
    report = simulate(windows, MODEL)
    assert report.energy_j > 0
    parts = sum(report.state_energy_j.values())
    assert report.energy_j == pytest.approx(parts)


@given(windows=window_lists, extra_start=st.floats(min_value=0.0, max_value=5000.0))
@settings(max_examples=60, deadline=None)
def test_adding_work_never_saves_energy(windows, extra_start):
    """Superset of transfer windows costs at least as much, up to promos.

    Strict monotonicity is false for RRC models with promotion energies:
    a new window can bridge a gap that previously demoted the radio,
    eliminating one re-promotion (e.g. windows (0,1) and (7,8) plus a new
    (1,2) can turn a FACH demotion + promotion into cheaper tail time).
    A 1-second window bridges at most one promo-bearing gap, so the
    saving is bounded by the larger promotion energy.
    """
    base = simulate(windows, MODEL).energy_j
    more = simulate(windows + [(extra_start, extra_start + 1.0)], MODEL).energy_j
    promo_slack = max(MODEL.promo_idle_energy_j, MODEL.promo_fach_energy_j)
    assert more >= base - promo_slack - 1e-9


@given(windows=window_lists)
@settings(max_examples=60, deadline=None)
def test_radio_on_intervals_cover_transfers(windows):
    """Every transfer second lies inside a radio-on interval."""
    intervals = radio_on_intervals(windows, MODEL)
    for start, end in windows:
        assert any(lo <= start and end <= hi for lo, hi in intervals)
