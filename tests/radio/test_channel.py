"""Tests for the time-varying channel model."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import DAY
from repro.radio import ChannelModel, best_window, transfer_energy_multiplier


class TestChannelModel:
    def test_quality_bounded(self):
        channel = ChannelModel(seed=1, min_quality=0.3)
        assert channel.grid.min() >= 0.3 - 1e-12
        assert channel.grid.max() <= 1.0 + 1e-12

    def test_deterministic(self):
        a, b = ChannelModel(seed=2), ChannelModel(seed=2)
        assert np.allclose(a.grid, b.grid)
        assert not np.allclose(a.grid, ChannelModel(seed=3).grid)

    def test_quality_wraps_at_midnight(self):
        channel = ChannelModel(seed=1)
        assert channel.quality_at(DAY + 100.0) == channel.quality_at(100.0)

    def test_energy_factor_inverse_to_quality(self):
        channel = ChannelModel(seed=4)
        t_best = float(np.argmax(channel.grid)) * channel.resolution_s
        t_worst = float(np.argmin(channel.grid)) * channel.resolution_s
        assert channel.energy_factor(t_best) < channel.energy_factor(t_worst)

    def test_mean_quality(self):
        channel = ChannelModel(seed=1)
        full = channel.mean_quality(0.0, DAY)
        assert channel.grid.min() <= full <= channel.grid.max()

    def test_mean_quality_validation(self):
        with pytest.raises(ValueError):
            ChannelModel(seed=1).mean_quality(100.0, 100.0)

    def test_min_quality_validation(self):
        with pytest.raises(ValueError):
            ChannelModel(min_quality=0.0)


class TestBestWindow:
    def test_finds_peak_region(self):
        channel = ChannelModel(seed=7)
        start, end = best_window(channel, 600.0)
        assert end - start == pytest.approx(600.0)
        chosen = channel.mean_quality(start, end)
        # Better than the day average by construction.
        assert chosen >= channel.mean_quality(0.0, DAY)

    def test_respects_range(self):
        channel = ChannelModel(seed=7)
        start, end = best_window(channel, 300.0, within=(3600.0, 7200.0))
        assert 3600.0 <= start and end <= 7200.0 + channel.resolution_s

    def test_window_too_long(self):
        channel = ChannelModel(seed=7)
        with pytest.raises(ValueError, match="longer"):
            best_window(channel, 7200.0, within=(0.0, 3600.0))

    def test_transfer_energy_multiplier_bounds(self):
        channel = ChannelModel(seed=7, min_quality=0.25)
        m = transfer_energy_multiplier(channel, 1000.0, 60.0)
        assert 1.0 <= m <= 1.75 + 1e-9
