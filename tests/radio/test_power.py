"""Tests for the radio power models."""

from __future__ import annotations

import pytest

from repro.radio import RadioPowerModel, lte_model, model_by_name, wcdma_model


class TestBundledModels:
    def test_wcdma_constants(self, wcdma):
        assert wcdma.name == "wcdma"
        assert wcdma.p_dch_w == pytest.approx(0.80)
        assert wcdma.p_fach_w == pytest.approx(0.46)
        assert wcdma.dch_tail_s == 5.0
        assert wcdma.fach_tail_s == 12.0

    def test_lte_single_tail(self, lte):
        assert lte.dch_tail_s == 0.0
        assert lte.fach_tail_s == pytest.approx(11.6)

    def test_lookup(self):
        assert model_by_name("wcdma").name == "wcdma"
        assert model_by_name("lte").name == "lte"

    def test_lookup_unknown(self):
        with pytest.raises(KeyError, match="unknown radio model"):
            model_by_name("5g")

    def test_tail_composition(self, wcdma):
        assert wcdma.tail_s == pytest.approx(17.0)
        assert wcdma.full_tail_energy_j == pytest.approx(5 * 0.8 + 12 * 0.46)

    def test_promo_energies(self, wcdma):
        assert wcdma.promo_idle_energy_j == pytest.approx(2.0 * 0.53)
        assert wcdma.promo_fach_energy_j == pytest.approx(1.5 * 0.70)


class TestEnergyFunctions:
    def test_isolated_transfer_energy(self, wcdma):
        # g(t): promo + DCH transfer + full tail.
        expected = 1.06 + 10.0 * 0.8 + 9.52
        assert wcdma.isolated_transfer_energy_j(10.0) == pytest.approx(expected)

    def test_marginal_is_transfer_only(self, wcdma):
        assert wcdma.marginal_transfer_energy_j(10.0) == pytest.approx(8.0)

    def test_saved_energy_is_overhead(self, wcdma):
        # ΔE is promotion + tail, independent of transfer duration.
        assert wcdma.saved_energy_j(1.0) == pytest.approx(wcdma.saved_energy_j(100.0))
        assert wcdma.saved_energy_j(5.0) == pytest.approx(1.06 + 9.52)

    def test_rejects_zero_duration(self, wcdma):
        with pytest.raises(ValueError):
            wcdma.isolated_transfer_energy_j(0.0)


class TestValidation:
    def _kwargs(self, **overrides):
        base = dict(
            name="x",
            p_idle_w=0.01,
            p_dch_w=0.8,
            p_fach_w=0.4,
            promo_idle_dch_s=2.0,
            promo_idle_dch_w=0.5,
            promo_fach_dch_s=1.5,
            promo_fach_dch_w=0.7,
            dch_tail_s=5.0,
            fach_tail_s=12.0,
        )
        base.update(overrides)
        return base

    def test_valid(self):
        RadioPowerModel(**self._kwargs())

    @pytest.mark.parametrize(
        "field,value",
        [
            ("p_dch_w", 0.0),
            ("p_idle_w", -1.0),
            ("dch_tail_s", -1.0),
            ("fach_tail_s", -1.0),
            ("promo_idle_dch_s", -1.0),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            RadioPowerModel(**self._kwargs(**{field: value}))

    def test_rejects_dch_below_fach(self):
        with pytest.raises(ValueError, match="p_dch_w"):
            RadioPowerModel(**self._kwargs(p_dch_w=0.3, p_fach_w=0.4))
