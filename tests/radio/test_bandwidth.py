"""Tests for the link model and utilization statistics."""

from __future__ import annotations

import pytest

from repro.radio import DEFAULT_BANDWIDTH_BPS, LinkModel, UtilizationStats, utilization
from repro.traces import NetworkActivity


class TestLinkModel:
    def test_default_bandwidth(self):
        assert LinkModel().bandwidth_bps == DEFAULT_BANDWIDTH_BPS

    def test_slot_capacity(self):
        link = LinkModel(bandwidth_bps=1000.0)
        assert link.slot_capacity_bytes(60.0) == 60_000.0

    def test_transfer_time(self):
        link = LinkModel(bandwidth_bps=1000.0)
        assert link.transfer_time_s(5000.0) == 5.0

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            LinkModel(bandwidth_bps=0.0)

    def test_rejects_negative_seconds(self):
        with pytest.raises(ValueError):
            LinkModel().slot_capacity_bytes(-1.0)


class TestUtilization:
    def _acts(self):
        return [
            NetworkActivity(0.0, "a", 8000.0, 2000.0, 10.0, True),
            NetworkActivity(100.0, "b", 4000.0, 1000.0, 5.0, True),
        ]

    def test_average_rates(self):
        stats = utilization(self._acts(), [(0.0, 50.0), (100.0, 150.0)])
        assert stats.avg_down_bps == pytest.approx(12000.0 / 100.0)
        assert stats.avg_up_bps == pytest.approx(3000.0 / 100.0)

    def test_peak_rates(self):
        stats = utilization(self._acts(), [(0.0, 200.0)])
        assert stats.peak_down_bps == pytest.approx(800.0)
        assert stats.peak_up_bps == pytest.approx(200.0)

    def test_less_radio_time_raises_utilization(self):
        acts = self._acts()
        wide = utilization(acts, [(0.0, 200.0)])
        tight = utilization(acts, [(0.0, 15.0)])
        assert tight.avg_down_bps > wide.avg_down_bps
        # Peak rates are channel properties; scheduling can't change them.
        assert tight.peak_down_bps == wide.peak_down_bps

    def test_empty(self):
        stats = utilization([], [])
        assert stats.avg_down_bps == 0.0
        assert stats.peak_up_bps == 0.0

    def test_ratio_to(self):
        a = UtilizationStats(100.0, 50.0, 1000.0, 500.0)
        b = UtilizationStats(25.0, 25.0, 1000.0, 250.0)
        ratios = a.ratio_to(b)
        assert ratios["down_avg"] == pytest.approx(4.0)
        assert ratios["up_avg"] == pytest.approx(2.0)
        assert ratios["down_peak"] == pytest.approx(1.0)

    def test_ratio_to_zero_denominator(self):
        a = UtilizationStats(100.0, 50.0, 1000.0, 500.0)
        zero = UtilizationStats(0.0, 0.0, 0.0, 0.0)
        assert all(v == 0.0 for v in a.ratio_to(zero).values())
