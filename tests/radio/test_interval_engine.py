"""Vectorized RRC interval engine vs the scalar reference walk.

``radio.intervals`` (merge → ``np.maximum.accumulate`` tail extension →
``np.diff``/``np.searchsorted`` state sums) replaced the per-window
Python loops in ``radio.rrc``.  The replacement must be *bit-identical*:
every :class:`EnergyReport` field and every radio-on interval produced
through :func:`simulate`/:func:`radio_on_intervals` has to equal the
pre-kernel scalar implementation (ported below as the reference) on
randomized seeded schedules and on the degenerate edges — empty input,
a single window, zero-length windows, zero/infinite tail allowances.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.radio import (
    FullTail,
    TruncatedTail,
    lte_model,
    radio_on_intervals,
    simulate,
    wcdma_model,
)
from repro.radio.intervals import merge_windows, merge_windows_with_allowances

MODELS = [wcdma_model(), lte_model()]


# ----------------------------------------------------------------------
# reference implementation (scalar port of the pre-kernel machine)
# ----------------------------------------------------------------------


def _reference_merge(windows):
    merged = []
    for start, end in sorted((float(s), float(e)) for s, e in windows):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _reference_merge_with_allowances(windows, window_tails):
    order = sorted(range(len(windows)), key=lambda i: windows[i][0])
    merged, allowances = [], []
    for i in order:
        start, end = float(windows[i][0]), float(windows[i][1])
        tail = float(window_tails[i])
        if merged and start <= merged[-1][1]:
            last_start, last_end = merged[-1]
            if end > last_end:
                merged[-1] = (last_start, end)
                allowances[-1] = tail
            elif end == last_end:
                allowances[-1] = max(allowances[-1], tail)
        else:
            merged.append((start, end))
            allowances.append(tail)
    return merged, allowances


def _reference_machine(merged, model, allowances):
    """The pre-kernel ``_run_machine`` accounting loop, verbatim."""
    if not merged:
        return {
            "energy_j": 0.0,
            "radio_on_s": 0.0,
            "transfer_s": 0.0,
            "tail_s": 0.0,
            "promo_idle_count": 0,
            "promo_fach_count": 0,
            "state_energy_j": {"transfer": 0.0, "tail": 0.0, "promo": 0.0},
        }
    transfer_e = tail_e = promo_e = 0.0
    transfer_s = tail_s = 0.0
    promo_idle = promo_fach = 0
    promo_idle += 1
    promo_e += model.promo_idle_energy_j
    promo_s_total = model.promo_idle_dch_s
    for i, (start, end) in enumerate(merged):
        allowance = allowances[i]
        transfer_s += end - start
        transfer_e += (end - start) * model.p_dch_w
        gap = merged[i + 1][0] - end if i + 1 < len(merged) else math.inf
        budget = min(gap, allowance, model.tail_s)
        dch_part = min(budget, model.dch_tail_s)
        fach_part = budget - dch_part
        tail_s += budget
        tail_e += dch_part * model.p_dch_w + fach_part * model.p_fach_w
        if i + 1 < len(merged):
            if gap <= min(allowance, model.dch_tail_s):
                pass
            elif gap <= min(allowance, model.tail_s):
                promo_fach += 1
                promo_e += model.promo_fach_energy_j
                promo_s_total += model.promo_fach_dch_s
            else:
                promo_idle += 1
                promo_e += model.promo_idle_energy_j
                promo_s_total += model.promo_idle_dch_s
    return {
        "energy_j": transfer_e + tail_e + promo_e,
        "radio_on_s": transfer_s + tail_s + promo_s_total,
        "transfer_s": transfer_s,
        "tail_s": tail_s,
        "promo_idle_count": promo_idle,
        "promo_fach_count": promo_fach,
        "state_energy_j": {"transfer": transfer_e, "tail": tail_e, "promo": promo_e},
    }


def _reference_radio_on(merged, model, allowances):
    extended = []
    for i, (start, end) in enumerate(merged):
        gap = merged[i + 1][0] - end if i + 1 < len(merged) else math.inf
        budget = min(gap, allowances[i], model.tail_s)
        extended.append((start, end + budget))
    return _reference_merge(extended)


def _assert_report_matches(report, expected):
    # Exact equality throughout: the engine contract is bit-identity,
    # not approximation.
    assert report.energy_j == expected["energy_j"]
    assert report.radio_on_s == expected["radio_on_s"]
    assert report.transfer_s == expected["transfer_s"]
    assert report.tail_s == expected["tail_s"]
    assert report.promo_idle_count == expected["promo_idle_count"]
    assert report.promo_fach_count == expected["promo_fach_count"]
    assert report.state_energy_j == expected["state_energy_j"]


def _random_windows(rng: np.random.Generator):
    n = int(rng.integers(1, 25))
    starts = rng.uniform(0.0, 600.0, n)
    durations = rng.uniform(0.0, 40.0, n)  # includes zero-length windows
    return [(float(s), float(s + d)) for s, d in zip(starts, durations)]


def _random_tails(rng: np.random.Generator, n: int):
    mode = rng.integers(0, 4)
    if mode == 0:
        return [0.0] * n
    if mode == 1:
        return [math.inf] * n
    if mode == 2:
        return [float(t) for t in rng.uniform(0.0, 20.0, n)]
    tails = [float(t) for t in rng.uniform(0.0, 20.0, n)]
    for i in range(n):
        if rng.random() < 0.3:
            tails[i] = math.inf
    return tails


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(10))
@pytest.mark.parametrize("model", MODELS, ids=["wcdma", "lte"])
def test_simulate_matches_reference_randomized(seed, model):
    rng = np.random.default_rng(2000 + seed)
    for _ in range(25):
        windows = _random_windows(rng)
        merged = _reference_merge(windows)
        expected = _reference_machine(merged, model, [math.inf] * len(merged))
        _assert_report_matches(simulate(windows, model), expected)


@pytest.mark.parametrize("seed", range(10))
@pytest.mark.parametrize("model", MODELS, ids=["wcdma", "lte"])
def test_per_window_tails_match_reference_randomized(seed, model):
    rng = np.random.default_rng(3000 + seed)
    for _ in range(25):
        windows = _random_windows(rng)
        tails = _random_tails(rng, len(windows))
        merged, allowances = _reference_merge_with_allowances(windows, tails)
        expected = _reference_machine(merged, model, allowances)
        _assert_report_matches(
            simulate(windows, model, window_tails=tails), expected
        )
        assert radio_on_intervals(
            windows, model, window_tails=tails
        ) == _reference_radio_on(merged, model, allowances)


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("model", MODELS, ids=["wcdma", "lte"])
def test_radio_on_intervals_match_reference(seed, model):
    rng = np.random.default_rng(4000 + seed)
    for _ in range(25):
        windows = _random_windows(rng)
        merged = _reference_merge(windows)
        for policy in (FullTail(), TruncatedTail(0.0), TruncatedTail(2.5)):
            allowances = [policy.max_tail_s()] * len(merged)
            assert radio_on_intervals(
                windows, model, policy
            ) == _reference_radio_on(merged, model, allowances)


def test_merge_windows_matches_reference():
    rng = np.random.default_rng(9)
    for _ in range(50):
        windows = _random_windows(rng)
        assert merge_windows(windows) == _reference_merge(windows)


def test_merge_with_allowances_matches_reference():
    rng = np.random.default_rng(10)
    for _ in range(50):
        windows = _random_windows(rng)
        tails = _random_tails(rng, len(windows))
        assert merge_windows_with_allowances(
            windows, tails
        ) == _reference_merge_with_allowances(windows, tails)


class TestEdgeCases:
    def test_empty(self):
        for model in MODELS:
            report = simulate([], model)
            assert report.energy_j == 0.0
            assert report.window_count == 0
            assert radio_on_intervals([], model) == []

    def test_single_window(self):
        model = MODELS[0]
        expected = _reference_machine([(5.0, 9.0)], model, [math.inf])
        _assert_report_matches(simulate([(5.0, 9.0)], model), expected)

    def test_zero_length_window(self):
        model = MODELS[0]
        merged = _reference_merge([(4.0, 4.0)])
        expected = _reference_machine(merged, model, [math.inf])
        _assert_report_matches(simulate([(4.0, 4.0)], model), expected)

    def test_zero_allowance_everywhere(self):
        model = MODELS[0]
        windows = [(0.0, 2.0), (10.0, 11.0)]
        merged, allowances = _reference_merge_with_allowances(windows, [0.0, 0.0])
        expected = _reference_machine(merged, model, allowances)
        report = simulate(windows, model, window_tails=[0.0, 0.0])
        _assert_report_matches(report, expected)
        assert report.tail_s == 0.0
        assert report.promo_idle_count == 2
