"""Columnar lane kernel vs the per-lane interval engine.

``radio.lanes`` batches many independent replay problems into one set of
array passes; the contract is *bit-identity per lane* with the per-lane
``radio.intervals`` / ``radio.rrc`` path (which is itself pinned to the
scalar reference in ``test_interval_engine.py``).  Random ragged grids
cover empty lanes, single-window lanes, zero-length windows, and lanes
whose windows bridge promo-bearing gaps; every comparison is exact
equality, never approximate.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.radio import (
    FullTail,
    TruncatedTail,
    lte_model,
    radio_on_intervals,
    simulate,
    wcdma_model,
)
from repro.radio.intervals import (
    decompose_replay,
    extend_by_tails,
    merge_windows,
    merge_windows_with_allowances,
    sequential_sum,
)
from repro.radio.lanes import (
    decompose_lanes,
    extend_lanes_by_tails,
    lane_sequential_sums,
    merge_lanes,
    merge_lanes_with_allowances,
    pack_lanes,
    replay_many,
    segmented_cummax,
    simulate_many,
)
from repro.telemetry import isolated

MODELS = [wcdma_model(), lte_model()]


def _random_lane(rng: np.random.Generator) -> list[tuple[float, float]]:
    """One lane's windows; gap scale spans stay-DCH through IDLE promos."""
    n = int(rng.integers(0, 14))
    if n == 0:
        return []
    # Spread controls gap sizes relative to the tail timers: tight packs
    # fuse, mid packs promote from FACH, wide packs demote to IDLE.
    spread = float(rng.choice([30.0, 120.0, 900.0]))
    starts = rng.uniform(0.0, spread, n)
    durations = rng.uniform(0.0, 10.0, n)
    durations[rng.random(n) < 0.2] = 0.0  # zero-length windows
    return [(float(s), float(s + d)) for s, d in zip(starts, durations)]


def _random_grid(rng: np.random.Generator) -> list[list[tuple[float, float]]]:
    n_lanes = int(rng.integers(0, 10))
    return [_random_lane(rng) for _ in range(n_lanes)]


def _random_tails(rng: np.random.Generator, n: int) -> list[float]:
    tails = [float(t) for t in rng.uniform(0.0, 20.0, n)]
    for i in range(n):
        r = rng.random()
        if r < 0.2:
            tails[i] = 0.0
        elif r < 0.4:
            tails[i] = math.inf
    return tails


def _flat_tails(per_lane: list[list[float]]) -> np.ndarray:
    return np.asarray([t for ts in per_lane for t in ts], dtype=np.float64)


def _assert_decomp_equal(lane_decomp, ref):
    for name in (
        "starts",
        "ends",
        "durations",
        "gaps",
        "budgets",
        "dch_parts",
        "fach_parts",
        "promo_fach",
        "promo_idle",
    ):
        got = getattr(lane_decomp, name)
        want = getattr(ref, name)
        assert np.array_equal(got, want), name


# ----------------------------------------------------------------------
# kernel primitives
# ----------------------------------------------------------------------


def test_segmented_cummax_matches_per_segment_accumulate():
    rng = np.random.default_rng(50)
    for _ in range(100):
        n = int(rng.integers(1, 60))
        values = rng.uniform(-100.0, 100.0, n)
        head = rng.random(n) < 0.25
        head[0] = True
        out = segmented_cummax(values, head)
        expected = np.empty(n)
        start = 0
        for i in range(1, n + 1):
            if i == n or head[i]:
                expected[start:i] = np.maximum.accumulate(values[start:i])
                start = i
        assert np.array_equal(out, expected)


def test_lane_sequential_sums_match_sequential_sum():
    rng = np.random.default_rng(51)
    for _ in range(100):
        n_lanes = int(rng.integers(1, 9))
        counts = rng.integers(0, 12, n_lanes)
        offsets = np.zeros(n_lanes + 1, dtype=np.intp)
        np.cumsum(counts, out=offsets[1:])
        n = int(offsets[-1])
        rows = rng.uniform(0.0, 1e6, (3, n))
        initials = (0.0, float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
        totals = lane_sequential_sums(rows, offsets, initials)
        for j in range(3):
            for i in range(n_lanes):
                lo, hi = int(offsets[i]), int(offsets[i + 1])
                assert totals[j, i] == sequential_sum(
                    rows[j, lo:hi], initial=initials[j]
                )


# ----------------------------------------------------------------------
# pipeline stages vs the per-lane engine
# ----------------------------------------------------------------------


def test_merge_lanes_matches_per_lane_merge():
    rng = np.random.default_rng(52)
    for _ in range(60):
        grid = _random_grid(rng)
        merged = merge_lanes(pack_lanes(grid))
        assert merged.n_lanes == len(grid)
        for i, lane in enumerate(grid):
            assert merged.lane(i) == merge_windows(lane)


def test_merge_lanes_with_allowances_matches_per_lane():
    rng = np.random.default_rng(53)
    for _ in range(60):
        grid = _random_grid(rng)
        tails = [_random_tails(rng, len(lane)) for lane in grid]
        merged, allow = merge_lanes_with_allowances(
            pack_lanes(grid), _flat_tails(tails)
        )
        for i, lane in enumerate(grid):
            ref_m, ref_a = merge_windows_with_allowances(lane, tails[i])
            lo, hi = int(merged.offsets[i]), int(merged.offsets[i + 1])
            assert merged.lane(i) == ref_m
            assert allow[lo:hi].tolist() == ref_a


@pytest.mark.parametrize("model", MODELS, ids=["wcdma", "lte"])
def test_decompose_and_extend_match_per_lane(model):
    rng = np.random.default_rng(54)
    for _ in range(40):
        grid = _random_grid(rng)
        tails = [_random_tails(rng, len(lane)) for lane in grid]
        merged, allow = merge_lanes_with_allowances(
            pack_lanes(grid), _flat_tails(tails)
        )
        decomp = decompose_lanes(
            merged, allow, tail_s=model.tail_s, dch_tail_s=model.dch_tail_s
        )
        extended = extend_lanes_by_tails(decomp)
        for i, lane in enumerate(grid):
            ref_m, ref_a = merge_windows_with_allowances(lane, tails[i])
            ref = decompose_replay(
                ref_m, ref_a, tail_s=model.tail_s, dch_tail_s=model.dch_tail_s
            )
            _assert_decomp_equal(decomp.lane(i), ref)
            assert extended.lane(i) == extend_by_tails(ref)


# ----------------------------------------------------------------------
# full batched pricing vs simulate / radio_on_intervals
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("model", MODELS, ids=["wcdma", "lte"])
def test_replay_many_matches_per_lane_simulate(seed, model):
    rng = np.random.default_rng(6000 + seed)
    for _ in range(12):
        grid = _random_grid(rng)
        policies: list = []
        window_tails: list = []
        for lane in grid:
            mode = int(rng.integers(0, 4))
            if mode == 0:
                policies.append(None)
                window_tails.append(None)
            elif mode == 1:
                policies.append(FullTail())
                window_tails.append(None)
            elif mode == 2:
                policies.append(TruncatedTail(float(rng.uniform(0.0, 8.0))))
                window_tails.append(None)
            else:
                policies.append(None)
                window_tails.append(_random_tails(rng, len(lane)))
        results = replay_many(grid, model, policies, window_tails=window_tails)
        reports = simulate_many(grid, model, policies, window_tails=window_tails)
        assert len(results) == len(grid)
        for i, lane in enumerate(grid):
            ref_report = simulate(
                lane, model, policies[i], window_tails=window_tails[i]
            )
            ref_on = radio_on_intervals(
                lane, model, policies[i], window_tails=window_tails[i]
            )
            report, on = results[i]
            assert report == ref_report
            assert reports[i] == ref_report
            assert on == ref_on


def test_telemetry_counters_match_per_lane_totals():
    rng = np.random.default_rng(55)
    grid = _random_grid(rng)
    while not grid or all(not lane for lane in grid):
        grid = _random_grid(rng)
    model = MODELS[0]
    with isolated(with_tracing=False) as (reg, _):
        for lane in grid:
            simulate(lane, model)
        per_lane = reg.snapshot()["counters"]
    with isolated(with_tracing=False) as (reg, _):
        simulate_many(grid, model)
        columnar = reg.snapshot()["counters"]
    assert columnar == per_lane


class TestEdges:
    def test_no_lanes(self):
        assert simulate_many([], MODELS[0]) == []
        assert replay_many([], MODELS[0]) == []

    def test_all_lanes_empty(self):
        results = replay_many([[], [], []], MODELS[0])
        for report, on in results:
            assert report == simulate([], MODELS[0])
            assert on == []

    def test_single_window_lanes(self):
        grid = [[(5.0, 9.0)], [], [(4.0, 4.0)]]
        for (report, on), lane in zip(replay_many(grid, MODELS[0]), grid):
            assert report == simulate(lane, MODELS[0])
            assert on == radio_on_intervals(lane, MODELS[0])

    def test_promo_bridging_gaps(self):
        # Gaps straddling the DCH and total tail timers on either model:
        # stay-DCH, FACH re-promotion, and IDLE re-promotion in one lane.
        for model in MODELS:
            lane = [
                (0.0, 1.0),
                (1.0 + model.dch_tail_s / 2, 2.0 + model.dch_tail_s / 2),
                (10.0 + model.tail_s / 2, 11.0 + model.tail_s / 2),
                (100.0 + 3 * model.tail_s, 101.0 + 3 * model.tail_s),
            ]
            grid = [lane, lane[:2], lane[2:]]
            for (report, on), windows in zip(replay_many(grid, model), grid):
                assert report == simulate(windows, model)
                assert on == radio_on_intervals(windows, model)

    def test_bad_window_raises_like_per_lane(self):
        grid = [[(0.0, 1.0)], [(5.0, 2.0)]]
        with pytest.raises(ValueError) as batch_err:
            simulate_many(grid, MODELS[0])
        with pytest.raises(ValueError) as lane_err:
            simulate(grid[1], MODELS[0])
        assert str(batch_err.value) == str(lane_err.value)

    def test_negative_allowance_raises_like_per_lane(self):
        grid = [[(0.0, 1.0)]]
        tails = [[-1.0]]
        with pytest.raises(ValueError) as batch_err:
            simulate_many(grid, MODELS[0], window_tails=tails)
        with pytest.raises(ValueError) as lane_err:
            simulate(grid[0], MODELS[0], window_tails=tails[0])
        assert str(batch_err.value) == str(lane_err.value)

    def test_tails_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="window_tails must match windows"):
            simulate_many([[(0.0, 1.0)]], MODELS[0], window_tails=[[0.0, 1.0]])

    def test_tails_with_custom_policy_raises(self):
        with pytest.raises(ValueError, match="cannot be combined"):
            simulate_many(
                [[(0.0, 1.0)]],
                MODELS[0],
                [TruncatedTail(1.0)],
                window_tails=[[0.0]],
            )

    def test_parallel_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="must parallel"):
            simulate_many([[(0.0, 1.0)]], MODELS[0], [None, None])
