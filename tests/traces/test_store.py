"""Tests for the monitoring database (TraceStore + WriteCache)."""

from __future__ import annotations

import pytest

from repro._util import DAY
from repro.traces import (
    AppUsage,
    NetworkActivity,
    ScreenSession,
    TraceStore,
    WriteCache,
)
from repro.traces.store import Record, RecordKind


def _screen(start=100.0, end=130.0):
    return Record(RecordKind.SCREEN, ScreenSession(start, end))


class TestWriteCache:
    def test_batches_until_capacity(self):
        cache = WriteCache(capacity_bytes=256, record_bytes=64)
        assert cache.add(_screen()) == []
        assert cache.add(_screen()) == []
        assert cache.add(_screen()) == []
        flushed = cache.add(_screen())  # 4 * 64 == 256 -> flush
        assert len(flushed) == 4
        assert cache.flush_count == 1
        assert cache.pending_bytes == 0

    def test_explicit_flush(self):
        cache = WriteCache(capacity_bytes=10_000)
        cache.add(_screen())
        flushed = cache.flush()
        assert len(flushed) == 1
        assert cache.flush_count == 1

    def test_flush_empty_is_noop(self):
        cache = WriteCache()
        assert cache.flush() == []
        assert cache.flush_count == 0

    def test_default_is_500kb(self):
        assert WriteCache().capacity_bytes == 500 * 1024

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            WriteCache(capacity_bytes=0)

    def test_fewer_flushes_than_records(self, volunteer):
        """The point of the cache: many records, few flash bursts."""
        store = TraceStore()
        store.ingest_trace(volunteer)
        n_records = (
            len(volunteer.screen_sessions)
            + len(volunteer.usages)
            + len(volunteer.activities)
        )
        assert n_records > 100
        assert store.cache.flush_count < n_records / 100


class TestTraceStoreQueries:
    @pytest.fixture
    def store(self, tiny_trace):
        s = TraceStore()
        s.ingest_trace(tiny_trace)
        return s

    def test_records_visible_after_checkpoint(self, store):
        assert len(store.screen_sessions) == 2
        assert len(store.usages) == 2
        assert len(store.activities) == 4

    def test_uncommitted_records_invisible(self):
        store = TraceStore()
        store.record_usage(AppUsage(10.0, "a", 5.0))
        assert store.usages == []  # still in cache
        store.checkpoint()
        assert len(store.usages) == 1

    def test_n_days(self, store):
        assert store.n_days() == 1

    def test_n_days_empty(self):
        assert TraceStore().n_days() == 0

    def test_apps_seen(self, store):
        assert "com.tencent.mm" in store.apps_seen()
        assert "com.facebook.katana" in store.apps_seen()

    def test_usage_matrix(self, store):
        matrix = store.usage_matrix()
        assert matrix.shape == (1, 24)
        assert matrix[0, 0] == 1.0  # usage at t=100s -> hour 0
        assert matrix[0, 2] == 1.0  # usage at t=7200s -> hour 2
        assert matrix.sum() == 2.0

    def test_screen_use_matrix(self, store):
        matrix = store.screen_use_matrix()
        assert matrix[0, 0] == 1.0
        assert matrix[0, 2] == 1.0
        assert matrix.sum() == 2.0

    def test_screen_use_matrix_spanning_hours(self):
        store = TraceStore()
        store.record_screen(ScreenSession(3500.0, 3700.0))  # crosses hour 0->1
        store.checkpoint()
        matrix = store.screen_use_matrix()
        assert matrix[0, 0] == 1.0 and matrix[0, 1] == 1.0

    def test_screen_use_matrix_midnight_crossing(self):
        store = TraceStore()
        store.record_screen(ScreenSession(DAY - 50.0, DAY + 50.0))
        store.checkpoint()
        matrix = store.screen_use_matrix()
        assert matrix.shape[0] == 2
        assert matrix[0, 23] == 1.0 and matrix[1, 0] == 1.0

    def test_network_matrix_screen_off_only(self, store):
        matrix = store.network_matrix(screen_off_only=True)
        assert matrix.sum() == 2.0
        assert matrix[0, 1] == 1.0  # email at 3600s -> hour 1

    def test_network_matrix_all(self, store):
        assert store.network_matrix(screen_off_only=False).sum() == 4.0

    def test_app_counts(self, store):
        assert store.app_network_counts()["browser"] == 1
        assert store.app_usage_counts()["com.tencent.mm"] == 1

    def test_activities_in_day(self, store):
        assert len(store.activities_in_day(0)) == 4
        assert store.activities_in_day(1) == []
