"""Generator tests: determinism, structural invariants, calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import DAY
from repro.traces import (
    TraceGenerator,
    cohort_traffic_split,
    cohort_utilization,
    generate_cohort,
    generate_volunteers,
    profile_by_id,
)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        profile = profile_by_id("user1")
        t1 = TraceGenerator(profile, seed=7).generate(3)
        t2 = TraceGenerator(profile, seed=7).generate(3)
        assert [s.start for s in t1.screen_sessions] == [s.start for s in t2.screen_sessions]
        assert [a.time for a in t1.activities] == [a.time for a in t2.activities]

    def test_different_seed_differs(self):
        profile = profile_by_id("user1")
        t1 = TraceGenerator(profile, seed=7).generate(3)
        t2 = TraceGenerator(profile, seed=8).generate(3)
        assert [s.start for s in t1.screen_sessions] != [s.start for s in t2.screen_sessions]

    def test_cohort_reproducible(self):
        a = generate_cohort(2, seed=99)
        b = generate_cohort(2, seed=99)
        for ta, tb in zip(a, b):
            assert len(ta.activities) == len(tb.activities)

    def test_cohort_users_independent(self):
        traces = generate_cohort(2, seed=99)
        counts = [len(t.activities) for t in traces]
        assert len(set(counts)) > 1


class TestStructure:
    def test_rejects_zero_days(self):
        with pytest.raises(ValueError, match="n_days"):
            TraceGenerator(profile_by_id("user1"), seed=0).generate(0)

    def test_sessions_disjoint_and_in_horizon(self, volunteer):
        prev_end = -1.0
        for session in volunteer.screen_sessions:
            assert session.start >= prev_end
            assert session.end <= volunteer.horizon
            prev_end = session.end

    def test_every_session_has_a_usage(self, volunteer):
        assert len(volunteer.usages) == len(volunteer.screen_sessions)

    def test_screen_flags_consistent(self, volunteer):
        # Trace.validate() already enforces this; re-check explicitly.
        for activity in volunteer.activities[:200]:
            assert volunteer.screen_on_at(activity.time) == activity.screen_on

    def test_screen_on_transfer_starts_inside_session(self, volunteer):
        # Foreground transfers are contained in their session; background
        # syncs that *start* during a session may legitimately spill past
        # its end, so only containment of the start is universal.
        for activity in volunteer.screen_on_activities()[:100]:
            assert volunteer.session_at(activity.time) is not None

    def test_volunteers_distinct_from_cohort(self):
        cohort_ids = {t.user_id for t in generate_cohort(1, seed=1)}
        vol_ids = {t.user_id for t in generate_volunteers(1, seed=1)}
        assert not cohort_ids & vol_ids

    def test_midnight_spill_does_not_overlap_next_day(self):
        # Regression: a session starting just before midnight can spill
        # into the next day; the next day's first Poisson draw used to
        # land inside it and fail Trace validation ("screen sessions
        # overlap").  Seed found by scanning the 12.5k-user fleet-scale
        # cohort (user stream-0827).
        from repro.evaluation.extensions import random_profile

        rng = np.random.default_rng(1917762144)
        profile = random_profile("stream-0827", rng)
        trace = TraceGenerator(profile, rng).generate(8)  # validates
        # The floor must have engaged: a cross-midnight touching pair.
        touched = [
            (prev, s)
            for prev, s in zip(trace.screen_sessions, trace.screen_sessions[1:])
            if s.start == prev.end and prev.end % DAY < prev.start % DAY
        ]
        assert touched


class TestCalibration:
    """The paper's Section III statistics, on the full 21-day cohort."""

    @pytest.fixture(scope="class")
    def full_cohort(self):
        return generate_cohort(21, seed=2014)

    def test_screen_off_fraction_near_paper(self, full_cohort):
        _, avg = cohort_traffic_split(full_cohort)
        assert 0.33 <= avg <= 0.50  # paper: 0.4098

    def test_utilization_near_paper(self, full_cohort):
        _, avg = cohort_utilization(full_cohort)
        assert 0.35 <= avg <= 0.55  # paper: 0.4514

    def test_session_lengths_in_fig2_range(self, full_cohort):
        stats, _ = cohort_utilization(full_cohort)
        for stat in stats:
            assert 3.0 <= stat.avg_session_s <= 30.0

    def test_rate_percentiles(self, full_cohort):
        from repro.traces import rate_percentile

        assert rate_percentile(full_cohort, 0.9, screen_on=False) < 1.5  # ~1 kBps
        assert rate_percentile(full_cohort, 0.9, screen_on=True) < 6.0  # ~5 kBps

    def test_bg_clusters_exist(self, full_cohort):
        """Cluster-anchored syncs land within the 90 s jitter window."""
        trace = full_cohort[0]
        off = trace.screen_off_activities()
        gaps = np.diff([a.time for a in off])
        # A visible fraction of consecutive screen-off syncs are bursts.
        assert (gaps < 90.0).mean() > 0.1
