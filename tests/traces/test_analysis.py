"""Tests for the Section III trace profiling analyses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces import (
    active_app_share,
    app_intensity,
    cohort_traffic_split,
    cohort_utilization,
    rate_cdf,
    rate_percentile,
    rate_values,
    screen_utilization,
    traffic_split,
)
from repro.traces.events import Trace


class TestTrafficSplit:
    def test_counts(self, tiny_trace):
        split = traffic_split(tiny_trace)
        assert split.on_count == 2 and split.off_count == 2
        assert split.off_fraction == pytest.approx(0.5)

    def test_bytes(self, tiny_trace):
        split = traffic_split(tiny_trace)
        assert split.on_bytes == pytest.approx(54000.0)
        assert split.off_bytes == pytest.approx(4300.0)
        assert 0.0 < split.off_bytes_fraction < 0.1

    def test_empty_trace(self):
        split = traffic_split(Trace(user_id="e", n_days=1, start_weekday=0))
        assert split.total_count == 0
        assert split.off_fraction == 0.0
        assert split.off_bytes_fraction == 0.0

    def test_cohort_average(self, cohort):
        splits, avg = cohort_traffic_split(cohort)
        assert len(splits) == 8
        assert avg == pytest.approx(np.mean([s.off_fraction for s in splits]))

    def test_cohort_empty(self):
        assert cohort_traffic_split([]) == ([], 0.0)


class TestRates:
    def test_rate_values_sorted_and_filtered(self, tiny_trace):
        on = rate_values([tiny_trace], screen_on=True)
        off = rate_values([tiny_trace], screen_on=False)
        assert on.size == 2 and off.size == 2
        assert np.all(np.diff(on) >= 0)

    def test_rate_cdf_monotone(self, cohort):
        grid, cdf = rate_cdf(cohort, screen_on=True)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] <= 1.0

    def test_rate_cdf_empty(self):
        grid, cdf = rate_cdf([], screen_on=True)
        assert np.allclose(cdf, 0.0)

    def test_percentile_empty(self):
        assert rate_percentile([], 0.9, screen_on=True) == 0.0

    def test_screen_off_slower_than_on(self, cohort):
        p_off = rate_percentile(cohort, 0.5, screen_on=False)
        p_on = rate_percentile(cohort, 0.5, screen_on=True)
        assert p_off < p_on


class TestScreenUtilization:
    def test_tiny_trace_values(self, tiny_trace):
        stats = screen_utilization(tiny_trace)
        # Sessions: 30 s + 60 s; utilized: 10 s + 20 s.
        assert stats.avg_session_s == pytest.approx(45.0)
        assert stats.avg_utilized_s == pytest.approx(15.0)
        assert stats.utilization_ratio == pytest.approx(1.0 / 3.0)

    def test_empty(self):
        stats = screen_utilization(Trace(user_id="e", n_days=1, start_weekday=0))
        assert stats.avg_session_s == 0.0
        assert stats.utilization_ratio == 0.0

    def test_overlapping_transfers_not_double_counted(self):
        from repro.traces import NetworkActivity, ScreenSession

        trace = Trace(
            user_id="o",
            n_days=1,
            start_weekday=0,
            screen_sessions=[ScreenSession(0.0, 100.0)],
            activities=[
                NetworkActivity(10.0, "a", 100.0, 0.0, 20.0, True),
                NetworkActivity(15.0, "b", 100.0, 0.0, 20.0, True),
            ],
        )
        stats = screen_utilization(trace)
        # Union of [10,30] and [15,35] is 25 s, not 40 s.
        assert stats.avg_utilized_s == pytest.approx(25.0)

    def test_cohort(self, cohort):
        stats, avg = cohort_utilization(cohort)
        assert len(stats) == 8
        assert 0.0 < avg < 1.0


class TestAppAnalyses:
    def test_app_intensity_hours(self, tiny_trace):
        intensity = app_intensity(tiny_trace)
        assert intensity["com.tencent.mm"][0] == 1.0
        assert intensity["browser"][2] == 1.0

    def test_active_app_share_requires_both(self, tiny_trace):
        share = active_app_share(tiny_trace)
        # Only apps with usage AND network traffic qualify; email and
        # facebook have traffic but no usage.
        assert set(share) == {"com.tencent.mm", "browser"}
        assert sum(share.values()) == pytest.approx(1.0)

    def test_active_app_share_empty(self):
        assert active_app_share(Trace(user_id="e", n_days=1, start_weekday=0)) == {}

    def test_fig5_structure_on_generated(self, cohort):
        """User 3's profile: few active apps, one dominant."""
        share = active_app_share(cohort[2])
        assert 4 <= len(share) <= 10  # paper: 8 of 23
        top = max(share.values())
        assert top > 0.4  # paper: 0.59
