"""Unit tests for the trace event data model."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import DAY
from repro.traces import AppUsage, NetworkActivity, ScreenSession, Trace


class TestScreenSession:
    def test_duration(self):
        assert ScreenSession(10.0, 25.0).duration == 15.0

    def test_contains_half_open(self):
        s = ScreenSession(10.0, 25.0)
        assert s.contains(10.0)
        assert s.contains(24.999)
        assert not s.contains(25.0)
        assert not s.contains(9.999)

    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError, match="start <= end"):
            ScreenSession(25.0, 10.0)

    def test_zero_length_allowed(self):
        assert ScreenSession(5.0, 5.0).duration == 0.0


class TestAppUsage:
    def test_end(self):
        assert AppUsage(100.0, "browser", 30.0).end == 130.0

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="duration"):
            AppUsage(100.0, "browser", -1.0)


class TestNetworkActivity:
    def _act(self, **kw):
        defaults = dict(
            time=100.0,
            app="browser",
            down_bytes=8000.0,
            up_bytes=2000.0,
            duration=10.0,
            screen_on=True,
        )
        defaults.update(kw)
        return NetworkActivity(**defaults)

    def test_total_bytes(self):
        assert self._act().total_bytes == 10000.0

    def test_rate(self):
        assert self._act().rate_bps == pytest.approx(1000.0)

    def test_interval(self):
        assert self._act().interval == (100.0, 110.0)

    def test_rejects_zero_duration(self):
        with pytest.raises(ValueError, match="duration"):
            self._act(duration=0.0)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError, match="down_bytes"):
            self._act(down_bytes=-1.0)

    def test_moved_to_preserves_everything_else(self):
        moved = self._act().moved_to(500.0)
        assert moved.time == 500.0
        assert moved.total_bytes == 10000.0
        assert moved.screen_on is True

    def test_compressed_shortens_slow_transfer(self):
        act = self._act(down_bytes=90000.0, up_bytes=10000.0)
        fast = act.compressed(24000.0)
        assert fast.duration == pytest.approx(100000.0 / 24000.0)
        assert fast.total_bytes == 100000.0

    def test_compressed_never_lengthens(self):
        # Already faster than the link: unchanged.
        act = self._act(down_bytes=500.0, up_bytes=0.0, duration=1.0)
        assert act.compressed(100.0) is act

    def test_compressed_min_duration_floor(self):
        act = self._act(down_bytes=10.0, up_bytes=0.0, duration=5.0)
        assert act.compressed(24000.0).duration == 0.5

    def test_compressed_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            self._act().compressed(0.0)


class TestTraceInvariants:
    def test_valid_trace_builds(self, tiny_trace):
        assert tiny_trace.n_days == 1
        assert len(tiny_trace.activities) == 4

    def test_sorts_events(self):
        trace = Trace(
            user_id="u",
            n_days=1,
            start_weekday=0,
            screen_sessions=[ScreenSession(200.0, 210.0), ScreenSession(50.0, 60.0)],
        )
        starts = [s.start for s in trace.screen_sessions]
        assert starts == sorted(starts)

    def test_rejects_overlapping_sessions(self):
        with pytest.raises(ValueError, match="overlap"):
            Trace(
                user_id="u",
                n_days=1,
                start_weekday=0,
                screen_sessions=[ScreenSession(0.0, 100.0), ScreenSession(50.0, 150.0)],
            )

    def test_rejects_session_past_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            Trace(
                user_id="u",
                n_days=1,
                start_weekday=0,
                screen_sessions=[ScreenSession(DAY - 10.0, DAY + 10.0)],
            )

    def test_rejects_mistagged_activity(self):
        with pytest.raises(ValueError, match="screen"):
            Trace(
                user_id="u",
                n_days=1,
                start_weekday=0,
                screen_sessions=[ScreenSession(100.0, 200.0)],
                activities=[
                    NetworkActivity(150.0, "a", 100.0, 0.0, 5.0, screen_on=False)
                ],
            )

    def test_rejects_bad_n_days(self):
        with pytest.raises(ValueError, match="n_days"):
            Trace(user_id="u", n_days=0, start_weekday=0)

    def test_rejects_bad_weekday(self):
        with pytest.raises(ValueError, match="start_weekday"):
            Trace(user_id="u", n_days=1, start_weekday=7)


class TestTraceQueries:
    def test_screen_on_at(self, tiny_trace):
        assert tiny_trace.screen_on_at(110.0)
        assert not tiny_trace.screen_on_at(130.0)  # half-open end
        assert not tiny_trace.screen_on_at(5000.0)
        assert tiny_trace.screen_on_at(7200.0)

    def test_session_at(self, tiny_trace):
        session = tiny_trace.session_at(110.0)
        assert session is not None and session.start == 100.0
        assert tiny_trace.session_at(131.0) is None

    def test_screen_off_activities(self, tiny_trace):
        off = tiny_trace.screen_off_activities()
        assert [a.app for a in off] == ["com.android.email", "com.facebook.katana"]

    def test_screen_on_activities(self, tiny_trace):
        on = tiny_trace.screen_on_activities()
        assert [a.app for a in on] == ["com.tencent.mm", "browser"]

    def test_activities_between(self, tiny_trace):
        mid = tiny_trace.activities_between(1000.0, 10000.0)
        assert [a.app for a in mid] == ["com.android.email", "browser"]

    def test_usages_between(self, tiny_trace):
        assert len(tiny_trace.usages_between(0.0, 1000.0)) == 1

    def test_is_weekend_day(self, two_day_trace):
        assert not two_day_trace.is_weekend_day(0)  # Friday
        assert two_day_trace.is_weekend_day(1)  # Saturday

    def test_total_screen_on_time(self, tiny_trace):
        assert tiny_trace.total_screen_on_time() == pytest.approx(90.0)

    def test_summary_fields(self, tiny_trace):
        summary = tiny_trace.summary()
        assert summary["n_activities"] == 4.0
        assert summary["screen_off_fraction"] == pytest.approx(0.5)


class TestDayView:
    def test_day_view_rebases_times(self, two_day_trace):
        day1 = two_day_trace.day_view(1)
        assert day1.n_days == 1
        assert day1.screen_sessions[0].start == pytest.approx(7200.0)
        assert day1.start_weekday == 5  # Saturday

    def test_day_view_partitions_activities(self, two_day_trace):
        day0 = two_day_trace.day_view(0)
        day1 = two_day_trace.day_view(1)
        assert len(day0.activities) + len(day1.activities) == 3

    def test_day_view_out_of_range(self, two_day_trace):
        with pytest.raises(ValueError, match="day_index"):
            two_day_trace.day_view(2)

    def test_days_iterator(self, two_day_trace):
        days = list(two_day_trace.days())
        assert len(days) == 2
        assert all(d.n_days == 1 for d in days)

    def test_day_view_clips_crossing_session(self):
        trace = Trace(
            user_id="u",
            n_days=2,
            start_weekday=0,
            screen_sessions=[ScreenSession(DAY - 10.0, DAY + 10.0)],
        )
        day0, day1 = trace.day_view(0), trace.day_view(1)
        assert day0.screen_sessions[0].end == pytest.approx(DAY)
        assert day1.screen_sessions[0].start == pytest.approx(0.0)
        assert day1.screen_sessions[0].end == pytest.approx(10.0)


class TestNumpyAccessors:
    def test_activity_times_sorted(self, tiny_trace):
        times = tiny_trace.activity_times()
        assert np.all(np.diff(times) >= 0)

    def test_activity_bytes_shape(self, tiny_trace):
        assert tiny_trace.activity_bytes().shape == (4, 2)

    def test_activity_rates_positive(self, tiny_trace):
        assert (tiny_trace.activity_rates() > 0).all()

    def test_screen_flags_match(self, tiny_trace):
        flags = tiny_trace.activity_screen_flags()
        assert flags.tolist() == [True, False, True, False]

    def test_usage_bins(self, tiny_trace):
        assert tiny_trace.usage_hour_bins().tolist() == [0, 2]
        assert tiny_trace.usage_day_bins().tolist() == [0, 0]

    def test_empty_trace_accessors(self):
        trace = Trace(user_id="e", n_days=1, start_weekday=0)
        assert trace.activity_times().size == 0
        assert trace.activity_bytes().shape == (0, 2)
        assert trace.summary()["screen_off_fraction"] == 0.0
