"""Unit tests for the app catalog and behaviour models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces import AppCatalog, AppModel, default_catalog


class TestAppModel:
    def test_defaults_have_no_background(self):
        assert not AppModel("x").has_background

    def test_background_flag(self):
        assert AppModel("x", background_interval_s=600.0).has_background

    @pytest.mark.parametrize(
        "field,value",
        [
            ("foreground_weight", -1.0),
            ("fg_net_prob", 1.5),
            ("fg_rate_median_bps", 0.0),
            ("background_interval_s", -5.0),
            ("bg_rate_median_bps", 0.0),
            ("bg_duration_mean_s", 0.0),
            ("upload_fraction", 2.0),
            ("fg_rate_cap_bps", 0.0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            AppModel("x", **{field: value})

    def test_fg_rate_capped(self):
        app = AppModel("x", fg_rate_median_bps=1000.0, fg_rate_sigma=3.0, fg_rate_cap_bps=5000.0)
        rng = np.random.default_rng(0)
        rates = [app.sample_fg_rate(rng) for _ in range(200)]
        assert max(rates) <= 5000.0
        assert min(rates) > 0.0

    def test_bg_rate_positive(self):
        app = AppModel("x", background_interval_s=600.0)
        rng = np.random.default_rng(0)
        assert all(app.sample_bg_rate(rng) > 0 for _ in range(50))

    def test_bg_duration_floor(self):
        app = AppModel("x", background_interval_s=600.0, bg_duration_mean_s=0.01)
        rng = np.random.default_rng(0)
        assert all(app.sample_bg_duration(rng) >= 0.5 for _ in range(50))


class TestAppCatalog:
    def _catalog(self):
        return AppCatalog(
            [
                AppModel("a", foreground_weight=1.0),
                AppModel("b", foreground_weight=3.0, background_interval_s=600.0),
                AppModel("c"),
            ]
        )

    def test_len_and_names(self):
        cat = self._catalog()
        assert len(cat) == 3
        assert cat.names == ["a", "b", "c"]

    def test_get(self):
        assert self._catalog().get("b").name == "b"
        with pytest.raises(KeyError):
            self._catalog().get("zzz")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            AppCatalog([AppModel("a"), AppModel("a")])

    def test_foreground_and_background_partitions(self):
        cat = self._catalog()
        assert {a.name for a in cat.foreground_apps()} == {"a", "b"}
        assert {a.name for a in cat.background_apps()} == {"b"}

    def test_sample_foreground_respects_weights(self):
        cat = self._catalog()
        rng = np.random.default_rng(1)
        draws = [cat.sample_foreground(rng).name for _ in range(500)]
        # b has 3x the weight of a.
        ratio = draws.count("b") / draws.count("a")
        assert 2.0 < ratio < 4.5
        assert "c" not in draws

    def test_sample_foreground_empty(self):
        with pytest.raises(ValueError, match="no foreground"):
            AppCatalog([AppModel("c")]).sample_foreground(np.random.default_rng(0))

    def test_restrict(self):
        sub = self._catalog().restrict(["a", "c"])
        assert sub.names == ["a", "c"]


class TestDefaultCatalog:
    def test_has_23_apps(self):
        assert len(default_catalog()) == 23

    def test_wechat_dominates_foreground(self):
        cat = default_catalog()
        weights = {a.name: a.foreground_weight for a in cat.foreground_apps()}
        assert max(weights, key=weights.__getitem__) == "com.tencent.mm"

    def test_has_background_apps(self):
        assert len(default_catalog().background_apps()) >= 4

    def test_dormant_tail_exists(self):
        cat = default_catalog()
        dormant = [
            a for a in cat if a.foreground_weight == 0 and not a.has_background
        ]
        assert len(dormant) >= 10

    def test_fig5_app_names_present(self):
        names = set(default_catalog().names)
        for expected in (
            "com.tencent.mm",
            "browser",
            "com.android.settings",
            "wali.miui.networkassistant",
        ):
            assert expected in names
