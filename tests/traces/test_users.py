"""Unit tests for user personas and intensity profiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces import (
    UserProfile,
    default_profiles,
    volunteer_profiles,
)
from repro.traces.users import intensity_profile, profile_by_id


class TestIntensityProfile:
    def test_shape_and_base(self):
        curve = intensity_profile([], base=0.5)
        assert curve.shape == (24,)
        assert np.allclose(curve, 0.5)

    def test_peak_location(self):
        curve = intensity_profile([(9.0, 5.0, 1.0)])
        assert int(curve.argmax()) == 9

    def test_midnight_wrap(self):
        curve = intensity_profile([(0.5, 5.0, 1.5)])
        # Hour 23 is only 1.5h from the peak centre; hour 12 is far.
        assert curve[23] > curve[12]

    def test_rejects_negative_height(self):
        with pytest.raises(ValueError):
            intensity_profile([(9.0, -1.0, 1.0)])

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            intensity_profile([(9.0, 1.0, 0.0)])


class TestUserProfile:
    def _profile(self, **kw):
        defaults = dict(
            user_id="u",
            description="test",
            weekday_intensity=np.ones(24),
            weekend_intensity=np.full(24, 0.5),
        )
        defaults.update(kw)
        return UserProfile(**defaults)

    def test_intensity_for(self):
        p = self._profile()
        assert p.intensity_for(weekend=False).sum() == pytest.approx(24.0)
        assert p.intensity_for(weekend=True).sum() == pytest.approx(12.0)

    def test_expected_sessions(self):
        assert self._profile().expected_sessions_per_day() == pytest.approx(24.0)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="shape"):
            self._profile(weekday_intensity=np.ones(23))

    def test_rejects_negative_intensity(self):
        with pytest.raises(ValueError, match="non-negative"):
            self._profile(weekend_intensity=-np.ones(24))

    @pytest.mark.parametrize(
        "field,value",
        [
            ("session_median_s", 0.0),
            ("fg_utilization", 1.5),
            ("day_jitter", -0.1),
            ("day_shift_sigma_h", -1.0),
            ("bg_scale", 0.0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            self._profile(**{field: value})


class TestBuiltinPersonas:
    def test_eight_profiling_users(self):
        profiles = default_profiles()
        assert len(profiles) == 8
        assert [p.user_id for p in profiles] == [f"user{i}" for i in range(1, 9)]

    def test_three_volunteers(self):
        vols = volunteer_profiles()
        assert len(vols) == 3
        assert all(p.user_id.startswith("volunteer") for p in vols)

    def test_personas_have_distinct_peaks(self):
        peaks = [int(p.weekday_intensity.argmax()) for p in default_profiles()]
        # The personas were designed to spread over the day.
        assert len(set(peaks)) >= 5

    def test_daily_session_counts_plausible(self):
        for profile in default_profiles():
            total = profile.expected_sessions_per_day()
            assert 15.0 < total < 150.0, profile.user_id

    def test_profile_by_id(self):
        assert profile_by_id("user4").user_id == "user4"
        assert profile_by_id("volunteer2").user_id == "volunteer2"
        with pytest.raises(KeyError):
            profile_by_id("nobody")

    def test_night_hours_are_quiet(self):
        # "Near zero usage from 2am to 6am" (paper Section IV-C1), except
        # for the night-owl persona.
        for profile in default_profiles():
            if profile.user_id == "user7":  # night owl, by design
                continue
            assert profile.weekday_intensity[3:5].max() < 0.5, profile.user_id
