"""Round-trip tests for trace serialization."""

from __future__ import annotations

import json

import pytest

from repro.traces import (
    cohort_from_dir,
    cohort_to_dir,
    trace_from_csv,
    trace_from_csv_lenient,
    trace_from_jsonl,
    trace_from_jsonl_lenient,
    trace_to_csv,
    trace_to_jsonl,
)


def _assert_traces_equal(a, b):
    assert a.user_id == b.user_id
    assert a.n_days == b.n_days
    assert a.start_weekday == b.start_weekday
    assert [(s.start, s.end) for s in a.screen_sessions] == [
        (s.start, s.end) for s in b.screen_sessions
    ]
    assert [(u.time, u.app, u.duration) for u in a.usages] == [
        (u.time, u.app, u.duration) for u in b.usages
    ]
    assert [
        (x.time, x.app, x.down_bytes, x.up_bytes, x.duration, x.screen_on)
        for x in a.activities
    ] == [
        (x.time, x.app, x.down_bytes, x.up_bytes, x.duration, x.screen_on)
        for x in b.activities
    ]


class TestJsonl:
    def test_round_trip(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace_to_jsonl(tiny_trace, path)
        _assert_traces_equal(tiny_trace, trace_from_jsonl(path))

    def test_round_trip_generated(self, volunteer, tmp_path):
        path = tmp_path / "vol.jsonl"
        trace_to_jsonl(volunteer, path)
        loaded = trace_from_jsonl(path)
        assert len(loaded.activities) == len(volunteer.activities)

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"kind": "screen", "start": 0.0, "end": 1.0}) + "\n")
        with pytest.raises(ValueError, match="header"):
            trace_from_jsonl(path)

    def test_unknown_kind(self, tmp_path, tiny_trace):
        path = tmp_path / "bad.jsonl"
        trace_to_jsonl(tiny_trace, path)
        with path.open("a") as fh:
            fh.write(json.dumps({"kind": "mystery"}) + "\n")
        with pytest.raises(ValueError, match="unknown record kind"):
            trace_from_jsonl(path)

    def test_version_check(self, tmp_path):
        path = tmp_path / "v.jsonl"
        path.write_text(
            json.dumps(
                {"kind": "header", "version": 99, "user_id": "u", "n_days": 1, "start_weekday": 0}
            )
            + "\n"
        )
        with pytest.raises(ValueError, match="version"):
            trace_from_jsonl(path)

    def test_blank_lines_ignored(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace_to_jsonl(tiny_trace, path)
        path.write_text(path.read_text().replace("\n", "\n\n"))
        _assert_traces_equal(tiny_trace, trace_from_jsonl(path))

    def test_header_must_be_first(self, tiny_trace, tmp_path):
        # A header buried below data records is not a valid file.
        path = tmp_path / "shuffled.jsonl"
        trace_to_jsonl(tiny_trace, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[1:] + lines[:1]) + "\n")
        with pytest.raises(ValueError, match="header"):
            trace_from_jsonl(path)

    def test_header_missing_field(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        path.write_text(
            json.dumps({"kind": "header", "version": 1, "user_id": "u"}) + "\n"
        )
        with pytest.raises(ValueError, match="n_days"):
            trace_from_jsonl(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="header"):
            trace_from_jsonl(path)


class TestJsonlLenient:
    def test_clean_file_loads_clean(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace_to_jsonl(tiny_trace, path)
        loaded, report = trace_from_jsonl_lenient(path)
        assert report.clean
        assert report.n_skipped == 0
        _assert_traces_equal(tiny_trace, loaded)

    def test_skips_corrupt_lines(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace_to_jsonl(tiny_trace, path)
        with path.open("a") as fh:
            fh.write("{this is not json\n")
            fh.write(json.dumps({"kind": "mystery"}) + "\n")
            fh.write(json.dumps({"kind": "usage", "time": 1.0}) + "\n")
        loaded, report = trace_from_jsonl_lenient(path)
        assert report.n_skipped == 3
        assert not report.clean
        locations = [loc for loc, _ in report.skipped]
        assert all(loc.startswith("line ") for loc in locations)
        _assert_traces_equal(tiny_trace, loaded)

    def test_still_requires_header(self, tmp_path):
        path = tmp_path / "nohdr.jsonl"
        path.write_text(json.dumps({"kind": "screen", "start": 0.0, "end": 1.0}) + "\n")
        with pytest.raises(ValueError, match="header"):
            trace_from_jsonl_lenient(path)

    def test_repairs_contradictory_screen_flag(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace_to_jsonl(tiny_trace, path)
        with path.open("a") as fh:
            # Claims screen-on at a time with no screen session.
            fh.write(
                json.dumps(
                    {
                        "kind": "network",
                        "time": 20000.0,
                        "app": "liar",
                        "down_bytes": 10.0,
                        "up_bytes": 1.0,
                        "duration": 1.0,
                        "screen_on": True,
                    }
                )
                + "\n"
            )
        loaded, report = trace_from_jsonl_lenient(path)
        assert report.repaired_screen_flags == 1
        repaired = [a for a in loaded.activities if a.app == "liar"]
        assert repaired[0].screen_on is False

    def test_drops_overlapping_sessions(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace_to_jsonl(tiny_trace, path)
        with path.open("a") as fh:
            # Overlaps the 100-130 s session.
            fh.write(json.dumps({"kind": "screen", "start": 110.0, "end": 140.0}) + "\n")
        loaded, report = trace_from_jsonl_lenient(path)
        assert any("overlap" in reason for _, reason in report.skipped)
        assert len(loaded.screen_sessions) == len(tiny_trace.screen_sessions)


class TestCsv:
    def test_round_trip(self, tiny_trace, tmp_path):
        prefix = tmp_path / "trace"
        paths = trace_to_csv(tiny_trace, prefix)
        assert len(paths) == 4
        _assert_traces_equal(tiny_trace, trace_from_csv(prefix))

    def test_meta_row_required(self, tiny_trace, tmp_path):
        prefix = tmp_path / "trace"
        trace_to_csv(tiny_trace, prefix)
        meta = prefix.with_name("trace_meta.csv")
        lines = meta.read_text().splitlines()
        meta.write_text("\n".join([lines[0], lines[1], lines[1]]) + "\n")
        with pytest.raises(ValueError, match="exactly one"):
            trace_from_csv(prefix)


class TestCsvLenient:
    def test_clean_round_trip(self, tiny_trace, tmp_path):
        prefix = tmp_path / "trace"
        trace_to_csv(tiny_trace, prefix)
        loaded, report = trace_from_csv_lenient(prefix)
        assert report.clean
        _assert_traces_equal(tiny_trace, loaded)

    def test_skips_malformed_rows(self, tiny_trace, tmp_path):
        prefix = tmp_path / "trace"
        trace_to_csv(tiny_trace, prefix)
        activities = prefix.with_name("trace_activities.csv")
        with activities.open("a") as fh:
            fh.write("not-a-number,app,1,1,1,0\n")
        loaded, report = trace_from_csv_lenient(prefix)
        assert report.n_skipped == 1
        location, _ = report.skipped[0]
        assert location.startswith("trace_activities.csv:")
        _assert_traces_equal(tiny_trace, loaded)

    def test_meta_still_strict(self, tiny_trace, tmp_path):
        prefix = tmp_path / "trace"
        trace_to_csv(tiny_trace, prefix)
        meta = prefix.with_name("trace_meta.csv")
        lines = meta.read_text().splitlines()
        meta.write_text("\n".join([lines[0], lines[1], lines[1]]) + "\n")
        with pytest.raises(ValueError, match="exactly one"):
            trace_from_csv_lenient(prefix)


class TestCohortDir:
    def test_round_trip(self, tmp_path):
        from repro.traces import generate_cohort

        cohort = generate_cohort(1, seed=5)[:3]
        paths = cohort_to_dir(cohort, tmp_path / "cohort")
        assert len(paths) == 3
        loaded = cohort_from_dir(tmp_path / "cohort")
        assert [t.user_id for t in loaded] == sorted(t.user_id for t in cohort)


class TestIterTraceRecords:
    def test_header_first_then_file_order(self, tiny_trace, tmp_path):
        from repro.traces import TraceHeader, iter_trace_records

        path = tmp_path / "t.jsonl"
        trace_to_jsonl(tiny_trace, path)
        records = list(iter_trace_records(path))
        header, body = records[0], records[1:]
        assert isinstance(header, TraceHeader)
        assert header.user_id == tiny_trace.user_id
        assert header.n_days == tiny_trace.n_days
        assert len(body) == (
            len(tiny_trace.screen_sessions)
            + len(tiny_trace.usages)
            + len(tiny_trace.activities)
        )

    def test_matches_trace_from_jsonl(self, volunteer, tmp_path):
        from repro.traces import (
            ScreenSession,
            Trace,
            TraceHeader,
            iter_trace_records,
        )

        path = tmp_path / "v.jsonl"
        trace_to_jsonl(volunteer, path)
        stream = iter_trace_records(path)
        header = next(stream)
        assert isinstance(header, TraceHeader)
        body = list(stream)
        rebuilt = Trace(
            user_id=header.user_id,
            n_days=header.n_days,
            start_weekday=header.start_weekday,
            screen_sessions=[r for r in body if isinstance(r, ScreenSession)],
            usages=[r for r in body if type(r).__name__ == "AppUsage"],
            activities=[r for r in body if type(r).__name__ == "NetworkActivity"],
        )
        _assert_traces_equal(rebuilt, trace_from_jsonl(path))

    def test_lenient_skips_and_reports(self, tiny_trace, tmp_path):
        from repro.traces import TraceLoadReport, iter_trace_records

        path = tmp_path / "t.jsonl"
        trace_to_jsonl(tiny_trace, path)
        with path.open("a") as fh:
            fh.write('{"kind": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown record kind"):
            list(iter_trace_records(path))
        report = TraceLoadReport()
        n_clean = len(list(iter_trace_records(path, lenient=True, report=report))) - 1
        assert n_clean == (
            len(tiny_trace.screen_sessions)
            + len(tiny_trace.usages)
            + len(tiny_trace.activities)
        )
        assert report.n_skipped == 1

    def test_missing_header_raises(self, tmp_path):
        from repro.traces import iter_trace_records

        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="header"):
            list(iter_trace_records(path))
