"""Round-trip tests for trace serialization."""

from __future__ import annotations

import json

import pytest

from repro.traces import (
    cohort_from_dir,
    cohort_to_dir,
    trace_from_csv,
    trace_from_jsonl,
    trace_to_csv,
    trace_to_jsonl,
)


def _assert_traces_equal(a, b):
    assert a.user_id == b.user_id
    assert a.n_days == b.n_days
    assert a.start_weekday == b.start_weekday
    assert [(s.start, s.end) for s in a.screen_sessions] == [
        (s.start, s.end) for s in b.screen_sessions
    ]
    assert [(u.time, u.app, u.duration) for u in a.usages] == [
        (u.time, u.app, u.duration) for u in b.usages
    ]
    assert [
        (x.time, x.app, x.down_bytes, x.up_bytes, x.duration, x.screen_on)
        for x in a.activities
    ] == [
        (x.time, x.app, x.down_bytes, x.up_bytes, x.duration, x.screen_on)
        for x in b.activities
    ]


class TestJsonl:
    def test_round_trip(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace_to_jsonl(tiny_trace, path)
        _assert_traces_equal(tiny_trace, trace_from_jsonl(path))

    def test_round_trip_generated(self, volunteer, tmp_path):
        path = tmp_path / "vol.jsonl"
        trace_to_jsonl(volunteer, path)
        loaded = trace_from_jsonl(path)
        assert len(loaded.activities) == len(volunteer.activities)

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"kind": "screen", "start": 0.0, "end": 1.0}) + "\n")
        with pytest.raises(ValueError, match="header"):
            trace_from_jsonl(path)

    def test_unknown_kind(self, tmp_path, tiny_trace):
        path = tmp_path / "bad.jsonl"
        trace_to_jsonl(tiny_trace, path)
        with path.open("a") as fh:
            fh.write(json.dumps({"kind": "mystery"}) + "\n")
        with pytest.raises(ValueError, match="unknown record kind"):
            trace_from_jsonl(path)

    def test_version_check(self, tmp_path):
        path = tmp_path / "v.jsonl"
        path.write_text(
            json.dumps(
                {"kind": "header", "version": 99, "user_id": "u", "n_days": 1, "start_weekday": 0}
            )
            + "\n"
        )
        with pytest.raises(ValueError, match="version"):
            trace_from_jsonl(path)

    def test_blank_lines_ignored(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace_to_jsonl(tiny_trace, path)
        path.write_text(path.read_text().replace("\n", "\n\n"))
        _assert_traces_equal(tiny_trace, trace_from_jsonl(path))


class TestCsv:
    def test_round_trip(self, tiny_trace, tmp_path):
        prefix = tmp_path / "trace"
        paths = trace_to_csv(tiny_trace, prefix)
        assert len(paths) == 4
        _assert_traces_equal(tiny_trace, trace_from_csv(prefix))

    def test_meta_row_required(self, tiny_trace, tmp_path):
        prefix = tmp_path / "trace"
        trace_to_csv(tiny_trace, prefix)
        meta = prefix.with_name("trace_meta.csv")
        lines = meta.read_text().splitlines()
        meta.write_text("\n".join([lines[0], lines[1], lines[1]]) + "\n")
        with pytest.raises(ValueError, match="exactly one"):
            trace_from_csv(prefix)


class TestCohortDir:
    def test_round_trip(self, tmp_path):
        from repro.traces import generate_cohort

        cohort = generate_cohort(1, seed=5)[:3]
        paths = cohort_to_dir(cohort, tmp_path / "cohort")
        assert len(paths) == 3
        loaded = cohort_from_dir(tmp_path / "cohort")
        assert [t.user_id for t in loaded] == sorted(t.user_id for t in cohort)
