"""Tests for fault injection threaded through the device and core layers."""

from __future__ import annotations

import pytest

from repro.core import GapServicer
from repro.device import DeviceSimulator
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.traces import NetworkActivity


def _pending(t, dur=4.0):
    return NetworkActivity(t, "app", 1000.0, 100.0, dur, False)


class TestDeviceReplayWithFaults:
    def test_inert_injector_is_bit_for_bit(self, test_day):
        stock = DeviceSimulator().replay(test_day)
        inert = DeviceSimulator().replay(
            test_day, injector=FaultInjector(FaultPlan.uniform(0.0))
        )
        assert inert.energy == stock.energy
        assert inert.retries == 0
        assert inert.failed_attempts == 0
        assert inert.failed_promotions == 0
        assert inert.forced_deliveries == 0

    def test_faults_cost_device_energy(self, test_day):
        injector = FaultInjector(FaultPlan.uniform(0.4, seed=3))
        stock = DeviceSimulator().replay(test_day)
        faulty = DeviceSimulator().replay(
            test_day, injector=injector, retry=RetryPolicy()
        )
        assert faulty.retries > 0
        assert faulty.failed_attempts + faulty.failed_promotions > 0
        assert faulty.energy.energy_j > stock.energy.energy_j
        # Payload is still fully delivered (forced at the bound).
        assert faulty.payload_bytes == pytest.approx(stock.payload_bytes)
        assert faulty.transfers == stock.transfers

    def test_device_faults_deterministic(self, test_day):
        injector_a = FaultInjector(FaultPlan.uniform(0.4, seed=3))
        injector_b = FaultInjector(FaultPlan.uniform(0.4, seed=3))
        a = DeviceSimulator().replay(test_day, injector=injector_a)
        b = DeviceSimulator().replay(test_day, injector=injector_b)
        assert a.energy == b.energy
        assert a.retries == b.retries


class TestGapServicerWithFaults:
    def test_inert_injector_unchanged(self):
        servicer = GapServicer(initial_s=30.0)
        plain = servicer.service(0.0, 400.0, [_pending(10.0)])
        with_inert = GapServicer(initial_s=30.0).service(
            0.0, 400.0, [_pending(10.0)], injector=FaultInjector(FaultPlan())
        )
        assert [a.time for a in with_inert.executed] == [
            a.time for a in plain.executed
        ]
        assert with_inert.failed_windows == []
        assert with_inert.retries == 0

    def test_faults_delay_serviced_transfers(self):
        injector = FaultInjector(FaultPlan(transfer_failure_rate=1.0, seed=5))
        retry = RetryPolicy(max_attempts=3, max_delay_s=120.0)
        result = GapServicer(initial_s=30.0).service(
            0.0, 4000.0, [_pending(10.0)], injector=injector, retry=retry
        )
        assert result.serviced == 1
        assert result.retries > 0
        assert len(result.failed_windows) > 0
        # Scheduled at the 30 s wake; forced no later than the bound.
        assert 30.0 < result.executed[0].time <= 30.0 + retry.max_delay_s + 1e-9

    def test_index_base_decorrelates_gaps(self):
        injector = FaultInjector(FaultPlan(transfer_failure_rate=0.5, seed=5))
        a = GapServicer(initial_s=30.0).service(
            0.0, 400.0, [_pending(10.0)], injector=injector, index_base=0
        )
        b = GapServicer(initial_s=30.0).service(
            0.0, 400.0, [_pending(10.0)], injector=injector, index_base=7
        )
        # Different index bases draw from different counter positions;
        # both still deliver the payload.
        assert a.serviced == b.serviced == 1
