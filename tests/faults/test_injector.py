"""Tests for the deterministic fault injector."""

from __future__ import annotations

import pytest

from repro._util import DAY
from repro.faults import FaultInjector, FaultPlan


class TestFaultPlan:
    def test_default_plan_is_inert(self):
        assert FaultPlan().inert

    def test_uniform_zero_is_inert(self):
        assert FaultPlan.uniform(0.0).inert

    def test_uniform_scales_rates(self):
        plan = FaultPlan.uniform(0.2, seed=7)
        assert plan.seed == 7
        assert plan.transfer_failure_rate == pytest.approx(0.2)
        assert plan.promotion_failure_rate == pytest.approx(0.1)
        assert plan.outage_keep_prob == pytest.approx(0.2)
        assert plan.record_drop_rate == 0.0
        assert not plan.inert

    def test_outage_without_candidates_is_inert(self):
        assert FaultPlan(outage_keep_prob=0.5, outage_candidates_per_day=0).inert

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultPlan(transfer_failure_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(outage_duration_s=0.0)
        with pytest.raises(ValueError):
            FaultPlan(outage_candidates_per_day=-1)
        with pytest.raises(ValueError):
            FaultPlan.uniform(-0.1)


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        a = FaultInjector(FaultPlan.uniform(0.3, seed=5))
        b = FaultInjector(FaultPlan.uniform(0.3, seed=5))
        grid = [
            a.attempt_fails(d, i, att, 1000.0 * i)
            for d in range(3)
            for i in range(20)
            for att in (1, 2)
        ]
        grid_b = [
            b.attempt_fails(d, i, att, 1000.0 * i)
            for d in range(3)
            for i in range(20)
            for att in (1, 2)
        ]
        assert grid == grid_b
        assert a.outage_windows(0) == b.outage_windows(0)

    def test_decisions_independent_of_call_order(self):
        a = FaultInjector(FaultPlan.uniform(0.3, seed=5))
        b = FaultInjector(FaultPlan.uniform(0.3, seed=5))
        # Query b in reverse order: counter-based draws must not couple.
        forward = [a.attempt_fails(0, i, 1, 0.0) for i in range(10)]
        backward = [b.attempt_fails(0, i, 1, 0.0) for i in reversed(range(10))]
        assert forward == list(reversed(backward))

    def test_different_seeds_differ(self):
        a = FaultInjector(FaultPlan.uniform(0.5, seed=1))
        b = FaultInjector(FaultPlan.uniform(0.5, seed=2))
        grid_a = [a.attempt_fails(0, i, 1, 0.0) for i in range(64)]
        grid_b = [b.attempt_fails(0, i, 1, 0.0) for i in range(64)]
        assert grid_a != grid_b

    def test_failure_sets_nest_as_rate_rises(self):
        # The whole monotonicity argument: any attempt failing at a low
        # rate also fails at every higher rate (same seed).
        low = FaultInjector(FaultPlan(transfer_failure_rate=0.1, seed=3))
        high = FaultInjector(FaultPlan(transfer_failure_rate=0.4, seed=3))
        for i in range(200):
            if low.attempt_fails(0, i, 1, 0.0) is not None:
                assert high.attempt_fails(0, i, 1, 0.0) is not None


class TestOutages:
    def test_windows_within_day(self):
        injector = FaultInjector(
            FaultPlan(outage_keep_prob=1.0, outage_candidates_per_day=3, seed=11)
        )
        windows = injector.outage_windows(0)
        assert len(windows) == 3
        for lo, hi in windows:
            assert 0.0 <= lo < hi <= DAY
            assert hi - lo == pytest.approx(900.0)

    def test_in_outage_and_end(self):
        injector = FaultInjector(
            FaultPlan(outage_keep_prob=1.0, outage_candidates_per_day=1, seed=11)
        )
        (lo, hi), = injector.outage_windows(0)
        mid = (lo + hi) / 2.0
        assert injector.in_outage(0, mid)
        assert injector.outage_end(0, mid) == hi
        assert not injector.in_outage(0, hi)
        assert injector.outage_end(0, hi) == hi
        assert injector.attempt_fails(0, 0, 1, mid) == "outage"

    def test_zero_keep_prob_no_windows(self):
        injector = FaultInjector(FaultPlan(transfer_failure_rate=0.5))
        assert injector.outage_windows(0) == []

    def test_days_draw_different_windows(self):
        injector = FaultInjector(
            FaultPlan(outage_keep_prob=1.0, outage_candidates_per_day=2, seed=11)
        )
        assert injector.outage_windows(0) != injector.outage_windows(1)


class TestDegradeTrace:
    def test_inert_plan_keeps_everything(self, tiny_trace):
        degraded, report = FaultInjector(FaultPlan()).degrade_trace(tiny_trace)
        assert report.dropped_records == 0
        assert report.retagged_activities == 0
        assert degraded.activities == tiny_trace.activities
        assert degraded.screen_sessions == tiny_trace.screen_sessions

    def test_full_drop_rate_loses_everything(self, tiny_trace):
        injector = FaultInjector(FaultPlan(record_drop_rate=1.0, seed=1))
        degraded, report = injector.degrade_trace(tiny_trace)
        assert degraded.activities == []
        assert degraded.screen_sessions == []
        assert report.dropped_records == (
            len(tiny_trace.screen_sessions)
            + len(tiny_trace.usages)
            + len(tiny_trace.activities)
        )

    def test_lost_session_retags_foreground_activity(self, tiny_trace):
        # Drop enough records that some foreground transfer loses its
        # session; the degraded trace must still validate (re-tagged).
        injector = FaultInjector(FaultPlan(record_drop_rate=0.6, seed=4))
        degraded, report = injector.degrade_trace(tiny_trace)
        # Construction already ran Trace.validate; spot-check the flags.
        for a in degraded.activities:
            assert a.screen_on == degraded.screen_on_at(a.time)

    def test_gap_drops_covered_records(self, tiny_trace):
        injector = FaultInjector(
            FaultPlan(
                trace_gap_keep_prob=1.0,
                trace_gap_candidates_per_day=1,
                trace_gap_duration_s=DAY - 1.0,
                seed=2,
            )
        )
        degraded, report = injector.degrade_trace(tiny_trace)
        assert len(report.gap_windows) == 1
        (lo, hi), = report.gap_windows
        for a in degraded.activities:
            assert not lo <= a.time < hi
        assert report.dropped_records > 0
