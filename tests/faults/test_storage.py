"""Storage faults vs shard recovery: every injected damage is survivable."""

from __future__ import annotations

import pytest

from repro.faults import StorageFaultInjector, current_snapshot_path, current_wal_path
from repro.stream.shards import ShardStore


def _day(user, i=0):
    return {"type": "day", "user_id": user, "engine": {"events": i}, "acc": {"i": i}}


def _done(user, events=5):
    return {
        "type": "done",
        "user_id": user,
        "engine": {"events": events},
        "acc": {},
        "summary": {"user_id": user, "events": events},
    }


@pytest.fixture()
def shard(tmp_path):
    """A shard with one compacted generation and a live WAL tail."""
    store = ShardStore(tmp_path / "s0", compact_every_records=2)
    store.append(_done("u1"))
    store.append(_day("u2", 0))  # compaction fires: gen 1 snapshot
    store.append(_day("u2", 1))  # gen-1 WAL tail
    return tmp_path / "s0"


class TestPathDiscovery:
    def test_finds_current_wal_and_snapshot(self, shard):
        assert current_wal_path(shard).name == "wal-00000001.jsonl"
        assert current_snapshot_path(shard).name == "snapshot-00000001.json"

    def test_empty_directory_yields_none(self, tmp_path):
        assert current_wal_path(tmp_path) is None
        assert current_snapshot_path(tmp_path) is None

    def test_falls_back_to_newest_without_manifest(self, shard):
        (shard / "MANIFEST.json").unlink()
        assert current_wal_path(shard).name == "wal-00000001.jsonl"


class TestWalFaults:
    def test_torn_write_is_repaired_on_recovery(self, shard):
        StorageFaultInjector(seed=7).tear_wal(shard)
        store = ShardStore(shard)
        report = store.recover()
        assert report.wal_damaged
        assert store.get("u2").engine_state == {"events": 1}

    def test_truncated_wal_keeps_valid_prefix(self, shard):
        StorageFaultInjector(seed=7).truncate_wal(shard)
        store = ShardStore(shard)
        report = store.recover()
        # u1 came from the snapshot and must always survive.
        assert store.get("u1").done
        assert report.replayed_records <= 1

    def test_seeded_damage_is_reproducible(self, tmp_path):
        sizes = []
        for name in ("a", "b"):
            store = ShardStore(tmp_path / name)
            for i in range(4):
                store.append(_day("u", i))
            StorageFaultInjector(seed=123).truncate_wal(tmp_path / name)
            sizes.append(current_wal_path(tmp_path / name).stat().st_size)
        assert sizes[0] == sizes[1]


class TestSnapshotFaults:
    def test_missing_snapshot_salvages_wal_tail(self, shard):
        StorageFaultInjector(seed=7).drop_snapshot(shard)
        store = ShardStore(shard)
        report = store.recover()
        assert any("missing" in issue for issue in report.issues)
        assert store.get("u1") is None  # lived only in the snapshot
        assert store.get("u2").engine_state == {"events": 1}

    def test_bit_flip_is_caught_by_the_content_hash(self, shard):
        StorageFaultInjector(seed=7).corrupt_snapshot(shard)
        store = ShardStore(shard)
        report = store.recover()
        assert any("content hash" in issue for issue in report.issues)
        # Poisoned state is discarded, never loaded.
        assert store.get("u1") is None


class TestManifestFaults:
    def test_lost_manifest_recovers_by_scanning(self, shard):
        StorageFaultInjector(seed=7).drop_manifest(shard)
        store = ShardStore(shard)
        report = store.recover()
        assert any("manifest" in issue for issue in report.issues)
        assert store.generation == 1
        assert store.get("u1").done
        assert store.get("u2").engine_state == {"events": 1}

    def test_injected_counter_tracks_landed_faults(self, shard, tmp_path):
        injector = StorageFaultInjector(seed=1)
        assert injector.tear_wal(tmp_path / "empty") is None
        assert injector.injected == 0
        assert injector.tear_wal(shard) is not None
        assert injector.drop_snapshot(shard) is not None
        assert injector.injected == 2
