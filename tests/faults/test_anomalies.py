"""AnomalyInjector: determinism, trace invariants, placement semantics."""

from __future__ import annotations

import pytest

from repro._util import DAY
from repro.faults import AnomalyInjector


def _added(clean, injected):
    """Activities present in the injected trace but not the clean one."""
    remaining = list(clean.activities)
    out = []
    for a in injected.activities:
        if a in remaining:
            remaining.remove(a)
        else:
            out.append(a)
    return out


class TestDeterminism:
    def test_same_seed_same_trace(self, volunteer):
        a = AnomalyInjector(seed=7).runaway_app(volunteer, start_day=8)
        b = AnomalyInjector(seed=7).runaway_app(volunteer, start_day=8)
        assert a.activities == b.activities
        c = AnomalyInjector(seed=7).stuck_dch(volunteer, start_day=8)
        d = AnomalyInjector(seed=7).stuck_dch(volunteer, start_day=8)
        assert c.activities == d.activities

    def test_different_seed_different_placement(self, volunteer):
        a = AnomalyInjector(seed=7).runaway_app(volunteer, start_day=8)
        b = AnomalyInjector(seed=8).runaway_app(volunteer, start_day=8)
        assert a.activities != b.activities

    def test_invocation_counter_decorrelates_repeat_injections(self, volunteer):
        # The same injector re-injecting the same trace advances its
        # Philox counter: independent placements, both still valid.
        injector = AnomalyInjector(seed=7)
        first = injector.runaway_app(volunteer, start_day=8)
        second = injector.runaway_app(volunteer, start_day=8)
        assert injector.injected == 2
        assert first.activities != second.activities


class TestRunawayApp:
    def test_adds_the_advertised_bursts_from_onset(self, volunteer):
        injected = AnomalyInjector(seed=7).runaway_app(
            volunteer, start_day=8, bursts_per_day=16
        )
        added = _added(volunteer, injected)
        assert len(added) == 16 * (volunteer.n_days - 8)
        assert all(a.time >= 8 * DAY for a in added)
        assert all(a.app == "com.devourer.sync" for a in added)
        # Construction re-validated every trace invariant already; spot
        # check the provenance flag the validator enforces.
        assert all(
            a.screen_on == volunteer.screen_on_at(a.time) for a in added
        )

    def test_rejects_out_of_range_onset(self, volunteer):
        with pytest.raises(ValueError, match="start_day"):
            AnomalyInjector().runaway_app(volunteer, start_day=volunteer.n_days)
        with pytest.raises(ValueError, match="start_day"):
            AnomalyInjector().runaway_app(volunteer, start_day=-1)

    def test_clean_trace_is_not_mutated(self, volunteer):
        n_before = len(volunteer.activities)
        AnomalyInjector(seed=7).runaway_app(volunteer, start_day=8)
        assert len(volunteer.activities) == n_before


class TestStuckDch:
    def test_holds_start_inside_screen_sessions(self, volunteer):
        injected = AnomalyInjector(seed=7).stuck_dch(
            volunteer, start_day=8, holds_per_day=4, hold_s=1800.0
        )
        added = _added(volunteer, injected)
        assert added, "the volunteer trace should admit at least one hold"
        for hold in added:
            # Foreground placement is the whole point: a screen-off hold
            # would be compressed to sub-second carrier-speed transfers.
            assert hold.screen_on
            session = volunteer.session_at(hold.time)
            assert session is not None and session.contains(hold.time)
            assert hold.duration == 1800.0
            # Each hold fits inside its day horizon.
            assert hold.time + hold.duration <= volunteer.n_days * DAY

    def test_at_most_holds_per_day(self, volunteer):
        injected = AnomalyInjector(seed=7).stuck_dch(
            volunteer, start_day=8, holds_per_day=3
        )
        added = _added(volunteer, injected)
        per_day: dict[int, int] = {}
        for hold in added:
            day = int(hold.time // DAY)
            assert day >= 8
            per_day[day] = per_day.get(day, 0) + 1
        assert per_day and max(per_day.values()) <= 3

    def test_rejects_out_of_range_onset(self, volunteer):
        with pytest.raises(ValueError, match="start_day"):
            AnomalyInjector().stuck_dch(volunteer, start_day=99)
