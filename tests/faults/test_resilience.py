"""Tests for apply_faults: outcome-level fault composition."""

from __future__ import annotations

import pytest

from repro.baselines import DelayBatchPolicy, NaivePolicy, NetMasterPolicy
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultStats,
    RetryPolicy,
    apply_faults,
)


class TestInertPlan:
    def test_returns_same_object(self, test_day):
        outcome = NaivePolicy().execute_day(test_day)
        faulted, stats = apply_faults(outcome, FaultInjector(FaultPlan()))
        assert faulted is outcome
        assert stats.retries == 0
        assert stats.failed_attempts == 0
        assert stats.forced == 0
        assert stats.added_delays == ()

    def test_rate_zero_energy_bit_for_bit(self, history, test_day, wcdma):
        # The acceptance bar: the fault-injected pipeline at rate 0 must
        # reproduce the stock pipeline's EnergyReport exactly.
        injector = FaultInjector(FaultPlan.uniform(0.0, seed=43))
        for policy in (
            NaivePolicy(),
            NetMasterPolicy(history),
            DelayBatchPolicy(60.0),
        ):
            outcome = policy.execute_day(test_day)
            faulted, _ = apply_faults(outcome, injector, RetryPolicy())
            assert faulted.energy(wcdma) == outcome.energy(wcdma)
            assert faulted.radio_on(wcdma) == outcome.radio_on(wcdma)


class TestFaultyPlan:
    @pytest.fixture
    def faulted_pair(self, history, test_day):
        outcome = NetMasterPolicy(history).execute_day(test_day)
        injector = FaultInjector(FaultPlan.uniform(0.3, seed=7))
        faulted, stats = apply_faults(outcome, injector, RetryPolicy())
        return outcome, faulted, stats

    def test_payload_conserved(self, faulted_pair, test_day):
        _, faulted, _ = faulted_pair
        faulted.validate_payload(test_day)  # raises on loss

    def test_transfers_never_move_earlier(self, faulted_pair):
        outcome, faulted, _ = faulted_pair
        for before, after in zip(outcome.activities, faulted.activities):
            assert after.time >= before.time - 1e-9

    def test_delay_bound_holds(self, faulted_pair):
        outcome, faulted, stats = faulted_pair
        bound = RetryPolicy().max_delay_s
        assert stats.added_delay_max_s <= bound + 1e-9
        for before, after in zip(outcome.activities, faulted.activities):
            assert after.time - before.time <= bound + 1e-9

    def test_faults_cost_energy(self, faulted_pair, wcdma):
        outcome, faulted, stats = faulted_pair
        assert stats.failed_attempts + stats.failed_promotions > 0
        assert faulted.energy(wcdma).energy_j > outcome.energy(wcdma).energy_j

    def test_stats_consistent_with_outcome(self, faulted_pair):
        outcome, faulted, stats = faulted_pair
        assert stats.n_transfers == len(outcome.activities)
        assert len(faulted.failed_windows) == stats.failed_attempts
        assert faulted.failed_promotions == stats.failed_promotions
        assert faulted.retries == stats.retries
        assert len(stats.added_delays) == stats.n_transfers

    def test_original_outcome_untouched(self, faulted_pair):
        outcome, faulted, _ = faulted_pair
        assert outcome.failed_windows == []
        assert outcome.failed_promotions == 0
        assert faulted is not outcome

    def test_monotone_energy_in_rate(self, history, test_day, wcdma):
        outcome = NetMasterPolicy(history).execute_day(test_day)
        energies = []
        for rate in (0.0, 0.1, 0.2, 0.4):
            injector = FaultInjector(FaultPlan.uniform(rate, seed=7))
            faulted, _ = apply_faults(outcome, injector, RetryPolicy())
            energies.append(faulted.energy(wcdma).energy_j)
        assert energies == sorted(energies)


class TestFaultStats:
    def test_delay_aggregates(self):
        stats = FaultStats(3, 2, 2, 0, 1, (0.0, 10.0, 50.0))
        assert stats.added_delay_mean_s == pytest.approx(20.0)
        assert stats.added_delay_max_s == pytest.approx(50.0)

    def test_empty_delays(self):
        stats = FaultStats(0, 0, 0, 0, 0, ())
        assert stats.added_delay_mean_s == 0.0
        assert stats.added_delay_max_s == 0.0
