"""Tests for graceful degradation: circuit breaker, data sufficiency,
and the duty-cycle-only fallback inside the middleware."""

from __future__ import annotations

import pytest

from repro.core import NetMaster, NetMasterConfig
from repro.faults import CircuitBreaker
from repro.habits import HabitModel


class TestCircuitBreaker:
    def test_starts_closed(self):
        assert not CircuitBreaker().open

    def test_trips_above_threshold(self):
        breaker = CircuitBreaker(threshold=0.3, min_interactions=20)
        assert breaker.record(10, 25)  # 40% misprediction
        assert breaker.open
        assert breaker.tripped_count == 1

    def test_needs_minimum_signal(self):
        breaker = CircuitBreaker(threshold=0.3, min_interactions=20)
        assert not breaker.record(10, 12)  # 83% but only 12 interactions
        assert not breaker.open

    def test_below_threshold_stays_closed(self):
        breaker = CircuitBreaker(threshold=0.3, min_interactions=20)
        assert not breaker.record(5, 25)  # 20%
        assert not breaker.open

    def test_cooldown_closes(self):
        breaker = CircuitBreaker(cooldown_days=2)
        breaker.record(10, 25)
        assert breaker.tick_degraded()  # one degraded day served
        assert not breaker.tick_degraded()  # cooldown elapsed
        assert not breaker.open

    def test_retrips_after_close(self):
        breaker = CircuitBreaker(cooldown_days=1)
        breaker.record(10, 25)
        breaker.tick_degraded()
        breaker.record(10, 25)
        assert breaker.open
        assert breaker.tripped_count == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=1.5)
        with pytest.raises(ValueError):
            CircuitBreaker(min_interactions=0)
        with pytest.raises(ValueError):
            CircuitBreaker().record(-1, 5)


class TestDataSufficiency:
    def test_long_history_is_sufficient(self, history):
        check = HabitModel.fit(history).data_sufficiency(min_days=3)
        assert check.sufficient
        assert check.reasons == ()

    def test_single_day_is_insufficient(self, tiny_trace):
        check = HabitModel.fit(tiny_trace).data_sufficiency(min_days=3)
        assert not check.sufficient
        assert check.reasons


class TestMiddlewareFallback:
    def test_insufficient_history_degrades(self, tiny_trace, test_day):
        nm = NetMaster(NetMasterConfig())
        nm.train(tiny_trace)  # 1 day: far below min_history_days
        assert nm.insufficient_history
        assert nm.degraded
        execution = nm.execute_day(test_day)
        assert execution.degraded
        assert execution.plan is None
        assert execution.interrupts == 0  # fallback never mispredicts
        src = sum(a.total_bytes for a in test_day.activities)
        out = sum(a.total_bytes for a in execution.activities)
        assert out == pytest.approx(src)  # payload conserved

    def test_degradation_opt_out(self, tiny_trace, test_day):
        config = NetMasterConfig(degrade_on_insufficient_history=False)
        nm = NetMaster(config)
        nm.train(tiny_trace)
        assert not nm.degraded
        assert not nm.execute_day(test_day).degraded

    def test_healthy_history_runs_full_pipeline(self, history, test_day):
        nm = NetMaster(NetMasterConfig())
        nm.train(history)
        assert not nm.degraded
        execution = nm.execute_day(test_day)
        assert not execution.degraded
        assert execution.plan is not None

    def test_open_breaker_forces_fallback_then_recovers(self, history, test_day):
        nm = NetMaster(NetMasterConfig(breaker_cooldown_days=1))
        nm.train(history)
        nm.breaker.record(10, 25)  # simulate a terrible day
        assert nm.degraded
        execution = nm.execute_day(test_day)
        assert execution.degraded
        # One degraded day served the cooldown; deferral resumes.
        assert not nm.degraded
        assert not nm.execute_day(test_day).degraded
