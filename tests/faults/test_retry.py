"""Tests for the deadline-aware retry loop."""

from __future__ import annotations

import pytest

from repro.faults import FaultInjector, FaultPlan, RetryPolicy, run_with_retries
from repro.traces import NetworkActivity


def _activity(t=1000.0, dur=8.0):
    return NetworkActivity(t, "app", 4000.0, 400.0, dur, False)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        retry = RetryPolicy(initial_backoff_s=5.0, backoff_factor=2.0, max_backoff_s=30.0)
        assert retry.backoff_s(1) == pytest.approx(5.0)
        assert retry.backoff_s(2) == pytest.approx(10.0)
        assert retry.backoff_s(3) == pytest.approx(20.0)
        assert retry.backoff_s(4) == pytest.approx(30.0)  # capped
        assert retry.backoff_s(10) == pytest.approx(30.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_delay_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_s(0)


class TestRunWithRetries:
    def test_clean_radio_first_attempt(self):
        injector = FaultInjector(FaultPlan())
        out = run_with_retries(_activity(), 1000.0, injector, RetryPolicy())
        assert out.time == 1000.0
        assert out.attempts == 1
        assert out.retries == 0
        assert out.failed_windows == ()
        assert not out.forced

    def test_always_failing_forces_at_bound(self):
        injector = FaultInjector(FaultPlan(transfer_failure_rate=1.0, seed=1))
        retry = RetryPolicy(max_attempts=4, max_delay_s=600.0)
        out = run_with_retries(_activity(), 1000.0, injector, retry)
        assert out.forced
        assert out.time == pytest.approx(1600.0)
        assert out.attempts == retry.max_attempts + 1
        assert len(out.failed_windows) == retry.max_attempts

    def test_delay_never_exceeds_bound(self):
        injector = FaultInjector(FaultPlan.uniform(0.6, seed=9))
        retry = RetryPolicy(max_delay_s=900.0)
        for index in range(50):
            out = run_with_retries(
                _activity(), 1000.0, injector, retry, index=index
            )
            assert out.time <= 1000.0 + retry.max_delay_s + 1e-9
            assert out.time >= 1000.0

    def test_deadline_clamps_below_max_delay(self):
        injector = FaultInjector(FaultPlan(transfer_failure_rate=1.0, seed=1))
        out = run_with_retries(
            _activity(), 1000.0, injector, RetryPolicy(max_delay_s=3600.0),
            deadline=1200.0,
        )
        assert out.forced
        assert out.time == pytest.approx(1200.0)

    def test_failed_windows_are_partial(self):
        injector = FaultInjector(
            FaultPlan(transfer_failure_rate=1.0, failed_attempt_fraction=0.25, seed=1)
        )
        out = run_with_retries(_activity(dur=8.0), 1000.0, injector, RetryPolicy())
        for lo, hi in out.failed_windows:
            assert hi - lo == pytest.approx(2.0)

    def test_outage_pushes_past_window_end(self):
        plan = FaultPlan(outage_keep_prob=1.0, outage_candidates_per_day=1, seed=11)
        injector = FaultInjector(plan)
        (lo, hi), = injector.outage_windows(0)
        scheduled = (lo + hi) / 2.0
        out = run_with_retries(
            _activity(scheduled), scheduled, injector, RetryPolicy(max_delay_s=3600.0)
        )
        # Success happens after coverage returns (or is forced at the bound).
        assert out.time >= min(hi, scheduled + 3600.0) - 1e-9
        assert out.retries >= 1

    def test_promotion_failures_burn_no_transfer_window(self):
        injector = FaultInjector(FaultPlan(promotion_failure_rate=1.0, seed=1))
        retry = RetryPolicy(max_attempts=3)
        out = run_with_retries(_activity(), 1000.0, injector, retry)
        assert out.failed_promotions == retry.max_attempts
        assert out.failed_windows == ()
        assert out.forced
