"""Tests for hour-level intensity matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import DAY
from repro.habits import (
    network_bytes_matrix,
    network_intensity_matrix,
    screen_use_matrix,
    split_by_daytype,
    usage_intensity_matrix,
    usage_intensity_vector,
)
from repro.traces import NetworkActivity, ScreenSession, Trace


class TestUsageMatrices:
    def test_counts_by_cell(self, tiny_trace):
        matrix = usage_intensity_matrix(tiny_trace)
        assert matrix.shape == (1, 24)
        assert matrix[0, 0] == 1.0 and matrix[0, 2] == 1.0
        assert matrix.sum() == 2.0

    def test_vector_sums_days(self, two_day_trace):
        vec = usage_intensity_vector(two_day_trace)
        assert vec.shape == (24,)
        assert vec.sum() == 2.0

    def test_empty_trace(self):
        trace = Trace(user_id="e", n_days=2, start_weekday=0)
        assert usage_intensity_matrix(trace).sum() == 0.0


class TestScreenUseMatrix:
    def test_binary_indicator(self, tiny_trace):
        matrix = screen_use_matrix(tiny_trace)
        assert set(np.unique(matrix)) <= {0.0, 1.0}
        assert matrix[0, 0] == 1.0 and matrix[0, 2] == 1.0

    def test_session_spanning_hours(self):
        trace = Trace(
            user_id="s",
            n_days=1,
            start_weekday=0,
            screen_sessions=[ScreenSession(3500.0, 7300.0)],
        )
        matrix = screen_use_matrix(trace)
        assert matrix[0, 0] == matrix[0, 1] == matrix[0, 2] == 1.0
        assert matrix[0, 3] == 0.0

    def test_session_crossing_midnight(self):
        trace = Trace(
            user_id="m",
            n_days=2,
            start_weekday=0,
            screen_sessions=[ScreenSession(DAY - 30.0, DAY + 30.0)],
        )
        matrix = screen_use_matrix(trace)
        assert matrix[0, 23] == 1.0 and matrix[1, 0] == 1.0

    def test_exact_hour_boundary_end(self):
        trace = Trace(
            user_id="b",
            n_days=1,
            start_weekday=0,
            screen_sessions=[ScreenSession(3000.0, 3600.0)],
        )
        matrix = screen_use_matrix(trace)
        assert matrix[0, 0] == 1.0
        assert matrix[0, 1] == 0.0  # ends exactly at the boundary


class TestNetworkMatrices:
    def test_screen_off_only(self, tiny_trace):
        matrix = network_intensity_matrix(tiny_trace, screen_off_only=True)
        assert matrix.sum() == 2.0
        assert matrix[0, 1] == 1.0  # email at 3600 s
        assert matrix[0, 13] == 1.0  # facebook at 50000 s

    def test_all_activities(self, tiny_trace):
        assert network_intensity_matrix(tiny_trace, screen_off_only=False).sum() == 4.0

    def test_bytes_matrix(self, tiny_trace):
        matrix = network_bytes_matrix(tiny_trace, screen_off_only=True)
        assert matrix[0, 1] == pytest.approx(2500.0)
        assert matrix[0, 13] == pytest.approx(1800.0)


class TestDayTypeSplit:
    def test_split_rows(self, two_day_trace):
        matrix = usage_intensity_matrix(two_day_trace)
        weekday, weekend = split_by_daytype(matrix, two_day_trace)
        assert weekday.shape == (1, 24)  # Friday
        assert weekend.shape == (1, 24)  # Saturday

    def test_rejects_row_mismatch(self, two_day_trace):
        with pytest.raises(ValueError, match="rows"):
            split_by_daytype(np.zeros((3, 24)), two_day_trace)
