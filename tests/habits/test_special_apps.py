"""Tests for the Special App registry."""

from __future__ import annotations

from repro.habits import SpecialAppRegistry
from repro.traces import TraceStore


class TestFitting:
    def test_from_trace(self, tiny_trace):
        registry = SpecialAppRegistry.from_trace(tiny_trace)
        # Used AND networked.
        assert registry.is_special("com.tencent.mm")
        assert registry.is_special("browser")
        # Networked but never used in the foreground.
        assert not registry.is_special("com.android.email")
        assert not registry.is_special("com.facebook.katana")

    def test_from_store(self, tiny_trace):
        store = TraceStore()
        store.ingest_trace(tiny_trace)
        registry = SpecialAppRegistry.from_store(store)
        assert registry.special == SpecialAppRegistry.from_trace(tiny_trace).special

    def test_unknown_app_is_special(self, tiny_trace):
        registry = SpecialAppRegistry.from_trace(tiny_trace)
        assert registry.is_special("brand.new.app")


class TestOnlineUpdates:
    def test_observe_promotes(self):
        registry = SpecialAppRegistry()
        registry.observe("app", used=True, networked=False)
        assert not registry.is_special("app")  # seen but not qualified
        registry.observe("app", used=True, networked=True)
        assert registry.is_special("app")

    def test_network_only_never_qualifies(self):
        registry = SpecialAppRegistry()
        registry.observe("pusher", used=False, networked=True)
        assert not registry.is_special("pusher")

    def test_usage_counts_accumulate(self):
        registry = SpecialAppRegistry()
        for _ in range(3):
            registry.observe("app", used=True, networked=True)
        assert registry.usage_counts["app"] == 3


class TestShares:
    def test_usage_share_sums_to_one(self, tiny_trace):
        registry = SpecialAppRegistry.from_trace(tiny_trace)
        share = registry.usage_share()
        assert sum(share.values()) == 1.0

    def test_dominant_app(self, cohort):
        registry = SpecialAppRegistry.from_trace(cohort[2])
        dominant = registry.dominant_app()
        assert dominant is not None
        app, share = dominant
        assert app == "com.tencent.mm"
        assert share > 0.4  # paper: 59% for user 3

    def test_empty_registry(self):
        registry = SpecialAppRegistry()
        assert registry.usage_share() == {}
        assert registry.dominant_app() is None
