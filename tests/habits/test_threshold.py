"""Tests for δ-threshold strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.habits import FixedDelta, ImpactBasedDelta, WeekdayWeekendDelta


class TestFixedDelta:
    def test_same_for_both_day_types(self):
        strategy = FixedDelta(0.3)
        assert strategy.delta_for(weekend=False) == 0.3
        assert strategy.delta_for(weekend=True) == 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedDelta(1.5)


class TestWeekdayWeekendDelta:
    def test_paper_defaults(self):
        strategy = WeekdayWeekendDelta()
        assert strategy.delta_for(weekend=False) == 0.2
        assert strategy.delta_for(weekend=True) == 0.1

    def test_custom(self):
        strategy = WeekdayWeekendDelta(weekday=0.4, weekend=0.3)
        assert strategy.delta_for(weekend=False) == 0.4

    def test_validation(self):
        with pytest.raises(ValueError):
            WeekdayWeekendDelta(weekday=-0.1)


class TestImpactBasedDelta:
    def test_zero_budget_gives_zero_delta(self):
        probs = np.array([0.1, 0.5, 0.9] + [0.0] * 21)
        # No interrupt mass allowed: δ must not exceed the smallest
        # nonzero probability.
        delta = ImpactBasedDelta(interrupt_budget=0.0).choose(probs)
        assert delta <= 0.1

    def test_large_budget_allows_large_delta(self):
        probs = np.array([0.1, 0.5, 0.9] + [0.0] * 21)
        delta = ImpactBasedDelta(interrupt_budget=0.5).choose(probs)
        assert delta > 0.1

    def test_budget_respected(self):
        rng = np.random.default_rng(5)
        probs = rng.uniform(0, 1, 24)
        for budget in (0.01, 0.05, 0.2):
            delta = ImpactBasedDelta(interrupt_budget=budget).choose(probs)
            missed = probs[probs < delta].sum() / probs.sum()
            assert missed <= budget + 1e-12

    def test_never_used_phone(self):
        assert ImpactBasedDelta().choose(np.zeros(24)) == 1.0

    def test_rejects_bad_probs(self):
        with pytest.raises(ValueError):
            ImpactBasedDelta().choose(np.array([0.5, 1.5]))
        with pytest.raises(ValueError):
            ImpactBasedDelta().choose(np.zeros((2, 24)))

    def test_delta_for_is_data_dependent(self):
        with pytest.raises(NotImplementedError):
            ImpactBasedDelta().delta_for(weekend=False)

    def test_monotone_in_budget(self):
        rng = np.random.default_rng(6)
        probs = rng.uniform(0, 1, 24)
        deltas = [
            ImpactBasedDelta(interrupt_budget=b).choose(probs)
            for b in (0.0, 0.05, 0.1, 0.3)
        ]
        assert deltas == sorted(deltas)
