"""Tests for the HabitModel and slot prediction (Eqs. (2)-(4))."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import DAY, HOUR
from repro.habits import FixedDelta, HabitModel, ImpactBasedDelta, prediction_accuracy
from repro.habits.prediction import Slot, SlotPrediction, _merge_hours
from repro.traces import AppUsage, NetworkActivity, ScreenSession, Trace


def _repeating_trace(n_days=6, hours=(9, 20)):
    """A trace using the phone at the same hours every day."""
    sessions, usages, activities = [], [], []
    for day in range(n_days):
        for hour in hours:
            t = day * DAY + hour * HOUR + 100.0
            sessions.append(ScreenSession(t, t + 60.0))
            usages.append(AppUsage(t, "com.tencent.mm", 60.0))
            activities.append(
                NetworkActivity(t + 5.0, "com.tencent.mm", 5000.0, 500.0, 20.0, True)
            )
        # One screen-off sync at 3am each day.
        activities.append(
            NetworkActivity(day * DAY + 3 * HOUR, "com.android.email", 1000.0, 100.0, 4.0, False)
        )
    return Trace(
        user_id="regular",
        n_days=n_days,
        start_weekday=0,
        screen_sessions=sessions,
        usages=usages,
        activities=activities,
    )


class TestSlot:
    def test_valid(self):
        slot = Slot(3600.0, 7200.0)
        assert slot.duration == 3600.0
        assert slot.contains(3600.0) and not slot.contains(7200.0)

    def test_rejects_out_of_day(self):
        with pytest.raises(ValueError):
            Slot(-1.0, 100.0)
        with pytest.raises(ValueError):
            Slot(100.0, DAY + 1.0)


class TestMergeHours:
    def test_consecutive_hours_merge(self):
        active = np.zeros(24, dtype=bool)
        active[[9, 10, 11, 20]] = True
        slots = _merge_hours(active)
        assert [(s.start / HOUR, s.end / HOUR) for s in slots] == [(9, 12), (20, 21)]

    def test_trailing_run_reaches_midnight(self):
        active = np.zeros(24, dtype=bool)
        active[22:] = True
        slots = _merge_hours(active)
        assert slots[-1].end == DAY

    def test_empty(self):
        assert _merge_hours(np.zeros(24, dtype=bool)) == ()


class TestHabitModelFit:
    def test_user_probs_one_for_daily_hours(self):
        model = HabitModel.fit(_repeating_trace())
        probs = model.user_probs(weekend=False)
        assert probs[9] == 1.0 and probs[20] == 1.0
        assert probs[3] == 0.0

    def test_net_counts_at_sync_hour(self):
        model = HabitModel.fit(_repeating_trace())
        # Weekday rows: days 0-4 of a Monday-start trace.
        assert model.net_counts(weekend=False)[3] == pytest.approx(1.0)
        assert model.net_counts(weekend=False)[12] == 0.0

    def test_net_bytes_and_seconds(self):
        model = HabitModel.fit(_repeating_trace())
        assert model.net_bytes(weekend=False)[3] == pytest.approx(1100.0)
        assert model.net_seconds(weekend=False)[3] == pytest.approx(4.0)

    def test_screen_seconds(self):
        model = HabitModel.fit(_repeating_trace())
        assert model.screen_seconds(weekend=False)[9] == pytest.approx(60.0)

    def test_weekend_split(self):
        model = HabitModel.fit(_repeating_trace(n_days=7))
        # Monday-start, 7 days: 5 weekdays + 2 weekend days, same habit.
        assert model.n_weekdays == 5 and model.n_weekends == 2
        assert model.user_probs(weekend=True)[9] == 1.0

    def test_special_apps_fitted(self):
        model = HabitModel.fit(_repeating_trace())
        assert model.special_apps.is_special("com.tencent.mm")
        assert not model.special_apps.is_special("com.android.email")


class TestUserSlots:
    def test_default_strategy_paper_deltas(self):
        model = HabitModel.fit(_repeating_trace())
        weekday = model.user_slots(weekend=False)
        assert weekday.delta == 0.2
        weekend = model.user_slots(weekend=True)
        assert weekend.delta == 0.1

    def test_slots_cover_habit_hours(self):
        model = HabitModel.fit(_repeating_trace())
        prediction = model.user_slots(weekend=False)
        assert prediction.covers(9 * HOUR + 100.0)
        assert prediction.covers(20 * HOUR)
        assert not prediction.covers(3 * HOUR)

    def test_active_hours_mask(self):
        model = HabitModel.fit(_repeating_trace())
        mask = model.user_slots(weekend=False).active_hours
        assert mask[9] and mask[20] and not mask[3]

    def test_higher_delta_fewer_slots(self, history):
        model = HabitModel.fit(history)
        low = model.user_slots(weekend=False, strategy=FixedDelta(0.05))
        high = model.user_slots(weekend=False, strategy=FixedDelta(0.8))
        assert low.active_hours.sum() >= high.active_hours.sum()

    def test_impact_based_strategy_resolves(self, history):
        model = HabitModel.fit(history)
        prediction = model.user_slots(
            weekend=False, strategy=ImpactBasedDelta(interrupt_budget=0.05)
        )
        assert 0.0 <= prediction.delta <= 1.0

    def test_zero_delta_means_any_usage(self):
        model = HabitModel.fit(_repeating_trace())
        prediction = model.user_slots(weekend=False, strategy=FixedDelta(0.0))
        assert prediction.active_hours.sum() == 2  # only hours ever used


class TestNetworkHours:
    def test_excludes_active_slots(self):
        model = HabitModel.fit(_repeating_trace())
        prediction = model.user_slots(weekend=False)
        hours = model.network_hours(weekend=False, user_slots=prediction)
        assert hours == [3]


class TestUsageProbIntegral:
    def test_whole_day(self):
        model = HabitModel.fit(_repeating_trace())
        total = model.usage_prob_integral(0.0, DAY, weekend=False)
        assert total == pytest.approx(2 * HOUR)  # two hours at prob 1

    def test_partial_hour(self):
        model = HabitModel.fit(_repeating_trace())
        half = model.usage_prob_integral(9 * HOUR, 9.5 * HOUR, weekend=False)
        assert half == pytest.approx(0.5 * HOUR)

    def test_zero_span(self):
        model = HabitModel.fit(_repeating_trace())
        assert model.usage_prob_integral(100.0, 100.0, weekend=False) == 0.0

    def test_rejects_inverted(self):
        model = HabitModel.fit(_repeating_trace())
        with pytest.raises(ValueError):
            model.usage_prob_integral(200.0, 100.0, weekend=False)


class TestPredictionAccuracy:
    def test_perfect_on_habitual_day(self):
        trace = _repeating_trace()
        model = HabitModel.fit(trace)
        prediction = model.user_slots(weekend=False)
        assert prediction_accuracy(prediction, trace.day_view(0)) == 1.0

    def test_zero_when_usage_outside(self):
        trace = _repeating_trace()
        model = HabitModel.fit(trace)
        prediction = model.user_slots(weekend=False)
        odd_day = Trace(
            user_id="odd",
            n_days=1,
            start_weekday=0,
            screen_sessions=[ScreenSession(5 * HOUR, 5 * HOUR + 30.0)],
            usages=[AppUsage(5 * HOUR, "browser", 30.0)],
        )
        assert prediction_accuracy(prediction, odd_day) == 0.0

    def test_empty_day_is_perfect(self):
        trace = _repeating_trace()
        model = HabitModel.fit(trace)
        prediction = model.user_slots(weekend=False)
        empty = Trace(user_id="empty", n_days=1, start_weekday=0)
        assert prediction_accuracy(prediction, empty) == 1.0

    def test_requires_single_day(self, two_day_trace):
        model = HabitModel.fit(_repeating_trace())
        prediction = model.user_slots(weekend=False)
        with pytest.raises(ValueError, match="single-day"):
            prediction_accuracy(prediction, two_day_trace)
