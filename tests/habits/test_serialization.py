"""JSON round-trips for habit models and middleware configs."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.netmaster import NetMasterConfig
from repro.habits import (
    HabitModel,
    config_from_dict,
    config_to_dict,
    configs_equal,
    habit_model_from_dict,
    habit_model_to_dict,
    habit_models_equal,
    load_habit_model,
    save_habit_model,
)
from repro.habits.serialization import (
    delta_from_dict,
    delta_to_dict,
    registry_from_dict,
    registry_to_dict,
)
from repro.habits.threshold import (
    FixedDelta,
    ImpactBasedDelta,
    WeekdayWeekendDelta,
)
from repro.radio import lte_model


class TestHabitModelRoundTrip:
    def test_dict_round_trip_is_bit_exact(self, volunteers):
        for trace in volunteers:
            model = HabitModel.fit(trace)
            again = habit_model_from_dict(
                json.loads(json.dumps(habit_model_to_dict(model)))
            )
            assert habit_models_equal(model, again)

    def test_file_round_trip(self, volunteer, tmp_path):
        model = HabitModel.fit(volunteer)
        path = save_habit_model(model, tmp_path / "model.json")
        assert habit_models_equal(model, load_habit_model(path))

    def test_registry_round_trip(self, volunteer):
        registry = HabitModel.fit(volunteer).special_apps
        assert registry_from_dict(registry_to_dict(registry)) == registry

    def test_equality_is_strict(self, volunteer):
        model = HabitModel.fit(volunteer)
        data = habit_model_to_dict(model)
        data["weekday_user_probs"][3] += 1e-12
        assert not habit_models_equal(model, habit_model_from_dict(data))

    def test_bad_array_shape_rejected(self, volunteer):
        data = habit_model_to_dict(HabitModel.fit(volunteer))
        data["weekday_net_bytes"] = [1.0, 2.0]
        with pytest.raises(ValueError):
            habit_model_from_dict(data)

    def test_negative_zero_and_nan_round_trip(self, volunteer):
        model = HabitModel.fit(volunteer)
        data = habit_model_to_dict(model)
        data["weekday_user_probs"][0] = -0.0
        a = habit_model_from_dict(data)
        b = habit_model_from_dict(json.loads(json.dumps(data)))
        assert habit_models_equal(a, b)
        assert np.signbit(b.weekday_user_probs[0])


class TestDeltaRoundTrip:
    @pytest.mark.parametrize(
        "strategy",
        [
            None,
            FixedDelta(0.25),
            WeekdayWeekendDelta(0.2, 0.4),
            ImpactBasedDelta(0.05),
        ],
    )
    def test_bundled_strategies(self, strategy):
        assert delta_from_dict(delta_to_dict(strategy)) == strategy

    def test_custom_strategy_rejected(self):
        class Custom:
            def delta_for(self, *a):  # pragma: no cover - never called
                return 0.1

        with pytest.raises(TypeError, match="Custom"):
            delta_to_dict(Custom())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="mystery"):
            delta_from_dict({"kind": "mystery"})


class TestConfigRoundTrip:
    def test_default_config(self):
        config = NetMasterConfig()
        again = config_from_dict(json.loads(json.dumps(config_to_dict(config))))
        assert configs_equal(config, again)

    def test_custom_config(self):
        config = NetMasterConfig(
            power=lte_model(),
            eps=0.1,
            delta=WeekdayWeekendDelta(0.15, 0.3),
            wake_window_s=45.0,
            enable_circuit_breaker=False,
            min_history_days=5,
        )
        again = config_from_dict(config_to_dict(config))
        assert configs_equal(config, again)
        assert not configs_equal(config, NetMasterConfig())

    def test_unknown_format_rejected(self):
        data = config_to_dict(NetMasterConfig())
        data["format"] = 99
        with pytest.raises(ValueError, match="format"):
            config_from_dict(data)
