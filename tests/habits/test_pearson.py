"""Tests for the Pearson-parameter analysis (Eq. (1))."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.habits import (
    cohort_cross_user_average,
    cross_user_matrix,
    day_matrix,
    intra_user_average,
    mean_offdiagonal,
    pairwise_matrix,
    pearson,
)


class TestPearson:
    def test_perfect_correlation(self):
        x = np.arange(24, dtype=float)
        assert pearson(x, 2 * x + 5) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        x = np.arange(24, dtype=float)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_matches_scipy(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            x, y = rng.normal(size=24), rng.normal(size=24)
            expected = scipy_stats.pearsonr(x, y).statistic
            assert pearson(x, y) == pytest.approx(expected, abs=1e-12)

    def test_degenerate_returns_zero(self):
        assert pearson(np.ones(24), np.arange(24.0)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            pearson(np.ones(24), np.ones(23))

    def test_too_short(self):
        with pytest.raises(ValueError, match="2 dimensions"):
            pearson(np.ones(1), np.ones(1))

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=5, max_size=24),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded(self, values):
        rng = np.random.default_rng(0)
        x = np.asarray(values)
        y = rng.normal(size=x.size)
        assert -1.0 - 1e-9 <= pearson(x, y) <= 1.0 + 1e-9


class TestMatrices:
    def test_pairwise_symmetric_unit_diagonal(self):
        rng = np.random.default_rng(1)
        vectors = [rng.normal(size=24) for _ in range(5)]
        matrix = pairwise_matrix(vectors)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 1.0)

    def test_mean_offdiagonal(self):
        matrix = np.array([[1.0, 0.5], [0.5, 1.0]])
        assert mean_offdiagonal(matrix) == pytest.approx(0.5)

    def test_mean_offdiagonal_singleton(self):
        assert mean_offdiagonal(np.ones((1, 1))) == 0.0

    def test_mean_offdiagonal_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            mean_offdiagonal(np.ones((2, 3)))


class TestPaperStructure:
    """Figs. 3-4: cross-user correlation low, intra-user high."""

    def test_cross_user_matrix_shape(self, cohort):
        assert cross_user_matrix(cohort).shape == (8, 8)

    def test_cross_user_low(self, cohort):
        assert cohort_cross_user_average(cohort) < 0.35  # paper: 0.1353

    def test_intra_user_high(self, cohort):
        averages = [intra_user_average(t) for t in cohort]
        assert np.mean(averages) > 0.35  # paper: 0.54

    def test_intra_beats_cross(self, cohort):
        cross = cohort_cross_user_average(cohort)
        intra = np.mean([intra_user_average(t) for t in cohort])
        assert intra > cross + 0.2

    def test_day_matrix_window(self, cohort):
        matrix = day_matrix(cohort[3], n_days=5)
        assert matrix.shape == (5, 5)
