"""Tests for incremental habit-model updates."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import DAY
from repro.habits import HabitModel
from repro.traces.events import Trace

from tests.habits.test_prediction import _repeating_trace


def _full_and_incremental(n_days: int):
    """Fit on all days at once vs fold days in one at a time."""
    trace = _repeating_trace(n_days=n_days)
    full = HabitModel.fit(trace)
    incremental = HabitModel.fit(trace.day_view(0))
    for d in range(1, n_days):
        incremental = incremental.updated_with(trace.day_view(d))
    return full, incremental


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("n_days", [2, 5, 7])
    def test_matches_batch_fit(self, n_days):
        full, incremental = _full_and_incremental(n_days)
        assert incremental.n_weekdays == full.n_weekdays
        assert incremental.n_weekends == full.n_weekends
        np.testing.assert_allclose(
            incremental.weekday_user_probs, full.weekday_user_probs
        )
        np.testing.assert_allclose(
            incremental.weekday_net_counts, full.weekday_net_counts
        )
        np.testing.assert_allclose(
            incremental.weekday_net_bytes, full.weekday_net_bytes
        )
        np.testing.assert_allclose(
            incremental.weekday_screen_seconds, full.weekday_screen_seconds
        )

    def test_weekend_rows_match_too(self):
        full, incremental = _full_and_incremental(7)
        np.testing.assert_allclose(
            incremental.weekend_user_probs, full.weekend_user_probs
        )
        np.testing.assert_allclose(
            incremental.weekend_net_counts, full.weekend_net_counts
        )

    def test_special_apps_preserved(self):
        full, incremental = _full_and_incremental(5)
        assert incremental.special_apps.special == full.special_apps.special

    def test_predictions_agree(self):
        full, incremental = _full_and_incremental(6)
        a = full.user_slots(weekend=False)
        b = incremental.user_slots(weekend=False)
        assert a.slots == b.slots


class TestIncrementalSemantics:
    def test_rejects_multiday(self):
        model = HabitModel.fit(_repeating_trace(2))
        with pytest.raises(ValueError, match="single-day"):
            model.updated_with(_repeating_trace(3))

    def test_does_not_mutate_original(self):
        model = HabitModel.fit(_repeating_trace(3))
        before = model.weekday_user_probs.copy()
        model.updated_with(_repeating_trace(4).day_view(3))
        np.testing.assert_array_equal(model.weekday_user_probs, before)

    def test_new_habit_hour_appears_gradually(self):
        model = HabitModel.fit(_repeating_trace(5))
        # A day with usage at a brand-new hour (6am).
        from repro.traces.events import AppUsage, ScreenSession

        new_day = Trace(
            user_id="regular",
            n_days=1,
            start_weekday=0,
            screen_sessions=[ScreenSession(6 * 3600.0, 6 * 3600.0 + 60.0)],
            usages=[AppUsage(6 * 3600.0, "com.tencent.mm", 60.0)],
        )
        updated = model.updated_with(new_day)
        assert model.weekday_user_probs[6] == 0.0
        assert 0.0 < updated.weekday_user_probs[6] < 0.5

    def test_volunteer_incremental_pipeline(self, volunteer):
        """Online operation: fold held-out days in one at a time."""
        from repro.evaluation import split_history

        history, days = split_history(volunteer, 10)
        model = HabitModel.fit(history)
        for day in days[:2]:
            model = model.updated_with(day)
        assert model.n_weekdays + model.n_weekends == 12
        prediction = model.user_slots(weekend=False)
        assert prediction.slots  # still predicts sensibly
