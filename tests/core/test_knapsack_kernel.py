"""Vectorized knapsack kernel vs a pure-Python reference DP.

The numpy rolling-array DP in ``core.knapsack`` must match the scalar
min-weight-per-profit DP (the pre-kernel implementation, ported here as
the reference) *exactly* — same chosen indices, bit-identical profit and
weight — on randomized seeded instances and on the degenerate edges:
zero-profit itemsets, single items, capacity 0.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.knapsack import (
    KnapsackSolution,
    SolutionMemo,
    knapsack_fptas,
    knapsack_fptas_batch,
)


# ----------------------------------------------------------------------
# reference implementation (scalar port of the pre-kernel solver)
# ----------------------------------------------------------------------


def _reference_profit_dp(
    int_profits: list[int], weights: list[float], capacity: float
) -> list[int]:
    """O(n · Σprofit) min-weight DP with an explicit take table."""
    n = len(int_profits)
    total = sum(int_profits)
    if total == 0:
        return []
    inf = float("inf")
    dp = [inf] * (total + 1)
    dp[0] = 0.0
    take = [[False] * (total + 1) for _ in range(n)]
    for i in range(n):
        q, w = int_profits[i], weights[i]
        if q == 0:
            continue
        for p in range(total, q - 1, -1):
            cand = dp[p - q] + w
            if cand < dp[p]:
                dp[p] = cand
                take[i][p] = True
    best_q = max(p for p in range(total + 1) if dp[p] <= capacity)
    chosen: list[int] = []
    p = best_q
    for i in range(n - 1, -1, -1):
        if p > 0 and take[i][p]:
            chosen.append(i)
            p -= int_profits[i]
    assert p == 0, "reference reconstruction failed"
    return chosen


def _reference_fptas(
    profits: np.ndarray, weights: np.ndarray, capacity: float, eps: float
) -> KnapsackSolution:
    """The pre-kernel ``knapsack_fptas`` pipeline over the reference DP."""
    usable = weights <= capacity
    sub_idx = np.nonzero(usable)[0]
    sub_profits = profits[usable]
    sub_weights = weights[usable]
    if sub_profits.size == 0 or sub_profits.max() == 0.0:
        chosen: list[int] = []
    else:
        scale = eps * float(sub_profits.max()) / sub_profits.size
        scaled = np.floor(sub_profits / scale).astype(np.int64)
        chosen_sub = _reference_profit_dp(
            [int(q) for q in scaled], [float(w) for w in sub_weights], capacity
        )
        chosen = [int(sub_idx[i]) for i in chosen_sub]
    idx = tuple(sorted(chosen))
    return KnapsackSolution(
        indices=idx,
        profit=float(profits[list(idx)].sum()) if idx else 0.0,
        weight=float(weights[list(idx)].sum()) if idx else 0.0,
    )


def _assert_same(actual: KnapsackSolution, expected: KnapsackSolution) -> None:
    assert actual.indices == expected.indices
    # Bit-identical, not approx: both sum the same items in index order.
    assert actual.profit == expected.profit
    assert actual.weight == expected.weight


def _random_instance(rng: np.random.Generator):
    n = int(rng.integers(1, 15))
    profits = rng.uniform(0.0, 30.0, n)
    if rng.random() < 0.2:  # sprinkle exact-zero profits
        profits[rng.integers(0, n)] = 0.0
    weights = rng.uniform(0.0, 10.0, n)
    capacity = float(weights.sum()) * float(rng.uniform(0.0, 1.1))
    return profits, weights, capacity


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("eps", [0.5, 0.25, 0.1])
def test_numpy_dp_matches_reference_randomized(seed, eps):
    rng = np.random.default_rng(1000 + seed)
    for _ in range(20):
        profits, weights, capacity = _random_instance(rng)
        actual = knapsack_fptas(profits, weights, capacity, eps=eps)
        expected = _reference_fptas(profits, weights, capacity, eps)
        _assert_same(actual, expected)


def test_zero_profit_itemset():
    sol = knapsack_fptas([0.0, 0.0, 0.0], [1.0, 2.0, 3.0], 10.0, eps=0.1)
    assert sol.indices == ()
    assert sol.profit == 0.0


def test_single_item_fits():
    sol = knapsack_fptas([5.0], [2.0], 3.0, eps=0.1)
    _assert_same(sol, _reference_fptas(np.array([5.0]), np.array([2.0]), 3.0, 0.1))
    assert sol.indices == (0,)


def test_single_item_too_heavy():
    sol = knapsack_fptas([5.0], [4.0], 3.0, eps=0.1)
    assert sol.indices == ()


def test_capacity_zero():
    profits = np.array([3.0, 1.0, 4.0])
    weights = np.array([1.0, 0.0, 2.0])
    sol = knapsack_fptas(profits, weights, 0.0, eps=0.1)
    _assert_same(sol, _reference_fptas(profits, weights, 0.0, 0.1))
    # Only the weightless item is packable.
    assert sol.indices == (1,)


def test_batch_matches_single_solves():
    rng = np.random.default_rng(77)
    problems = [_random_instance(rng) for _ in range(12)]
    batch = knapsack_fptas_batch(problems, eps=0.2)
    for (p, w, c), sol in zip(problems, batch):
        _assert_same(sol, knapsack_fptas(p, w, c, eps=0.2))


def test_memo_returns_identical_solutions():
    rng = np.random.default_rng(5)
    problems = [_random_instance(rng) for _ in range(6)]
    memo = SolutionMemo()
    cold = knapsack_fptas_batch(problems, eps=0.2, memo=memo)
    assert memo.hits == 0
    warm = knapsack_fptas_batch(problems, eps=0.2, memo=memo)
    assert memo.hits == len(problems)
    for a, b in zip(cold, warm):
        _assert_same(b, a)


def test_memo_distinguishes_eps_and_capacity():
    memo = SolutionMemo()
    profits, weights = np.array([3.0, 4.0]), np.array([1.0, 2.0])
    knapsack_fptas_batch([(profits, weights, 2.0)], eps=0.2, memo=memo)
    knapsack_fptas_batch([(profits, weights, 3.0)], eps=0.2, memo=memo)
    knapsack_fptas_batch([(profits, weights, 2.0)], eps=0.1, memo=memo)
    assert memo.hits == 0
    assert len(memo) == 3
