"""Knapsack solver tests, including Hypothesis guarantees."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    knapsack_bruteforce,
    knapsack_exact,
    knapsack_fptas,
    knapsack_greedy,
)


class TestBasics:
    def test_empty_instance(self):
        for solver in (knapsack_exact, knapsack_greedy):
            sol = solver([], [], 10.0)
            assert sol.indices == () and sol.profit == 0.0
        sol = knapsack_fptas([], [], 10.0)
        assert sol.indices == ()

    def test_single_item_fits(self):
        sol = knapsack_exact([5.0], [3.0], 10.0)
        assert sol.indices == (0,)
        assert sol.profit == 5.0

    def test_single_item_too_heavy(self):
        for solver in (knapsack_exact, knapsack_greedy):
            assert solver([5.0], [30.0], 10.0).indices == ()
        assert knapsack_fptas([5.0], [30.0], 10.0).indices == ()

    def test_classic_instance(self):
        # Items: (profit, weight); optimum is {1, 2} with profit 11.
        profits = [6.0, 5.0, 6.0]
        weights = [5.0, 3.0, 3.0]
        sol = knapsack_exact(profits, weights, 6.0)
        assert set(sol.indices) == {1, 2}
        assert sol.profit == 11.0

    def test_zero_capacity(self):
        sol = knapsack_exact([1.0, 2.0], [1.0, 1.0], 0.0)
        assert sol.indices == ()

    def test_zero_weight_items_always_taken(self):
        sol = knapsack_exact([3.0, 4.0], [0.0, 0.0], 0.0)
        assert set(sol.indices) == {0, 1}


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            knapsack_exact([1.0], [1.0, 2.0], 5.0)

    def test_negative_profit(self):
        with pytest.raises(ValueError, match="non-negative"):
            knapsack_exact([-1.0], [1.0], 5.0)

    def test_negative_weight(self):
        with pytest.raises(ValueError, match="non-negative"):
            knapsack_exact([1.0], [-1.0], 5.0)

    def test_exact_requires_integer_profits(self):
        with pytest.raises(ValueError, match="integer"):
            knapsack_exact([1.5], [1.0], 5.0)

    def test_fptas_rejects_zero_eps(self):
        with pytest.raises(ValueError, match="eps"):
            knapsack_fptas([1.0], [1.0], 5.0, eps=0.0)

    def test_bruteforce_size_limit(self):
        with pytest.raises(ValueError, match="22"):
            knapsack_bruteforce(np.ones(25), np.ones(25), 5.0)

    def test_duplicate_indices_rejected_in_solution(self):
        from repro.core import KnapsackSolution

        with pytest.raises(ValueError, match="duplicate"):
            KnapsackSolution(indices=(1, 1), profit=2.0, weight=2.0)


small_instances = st.integers(min_value=1, max_value=10).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(min_value=0, max_value=40), min_size=n, max_size=n),
        st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=n, max_size=n),
        st.floats(min_value=0.0, max_value=30.0),
    )
)


class TestGuarantees:
    @given(instance=small_instances)
    @settings(max_examples=80, deadline=None)
    def test_exact_matches_bruteforce(self, instance):
        profits, weights, capacity = instance
        exact = knapsack_exact([float(p) for p in profits], weights, capacity)
        brute = knapsack_bruteforce([float(p) for p in profits], weights, capacity)
        assert exact.profit == pytest.approx(brute.profit)
        assert exact.weight <= capacity + 1e-9

    @given(instance=small_instances, eps=st.sampled_from([0.1, 0.3, 0.5]))
    @settings(max_examples=80, deadline=None)
    def test_fptas_bound(self, instance, eps):
        profits, weights, capacity = instance
        profits = [float(p) for p in profits]
        approx = knapsack_fptas(profits, weights, capacity, eps=eps)
        brute = knapsack_bruteforce(profits, weights, capacity)
        assert approx.profit >= (1.0 - eps) * brute.profit - 1e-9
        assert approx.weight <= capacity + 1e-9

    @given(instance=small_instances)
    @settings(max_examples=80, deadline=None)
    def test_greedy_half_bound(self, instance):
        profits, weights, capacity = instance
        profits = [float(p) for p in profits]
        greedy = knapsack_greedy(profits, weights, capacity)
        brute = knapsack_bruteforce(profits, weights, capacity)
        assert greedy.profit >= 0.5 * brute.profit - 1e-9
        assert greedy.weight <= capacity + 1e-9

    @given(instance=small_instances)
    @settings(max_examples=50, deadline=None)
    def test_solution_totals_consistent(self, instance):
        profits, weights, capacity = instance
        profits = [float(p) for p in profits]
        sol = knapsack_fptas(profits, weights, capacity, eps=0.2)
        assert sol.profit == pytest.approx(sum(profits[i] for i in sol.indices))
        assert sol.weight == pytest.approx(sum(weights[i] for i in sol.indices))


class TestDPInternals:
    """Regressions for the min-weight DP hot path (packed take table)."""

    def test_all_zero_profits_return_empty(self):
        # total == 0 short-circuits the DP entirely.
        sol = knapsack_exact([0.0, 0.0, 0.0], [1.0, 2.0, 3.0], 10.0)
        assert sol.indices == () and sol.profit == 0.0
        sol = knapsack_fptas([0.0, 0.0], [1.0, 1.0], 10.0)
        assert sol.indices == () and sol.profit == 0.0
        # Greedy may still pack worthless items that fit, but earns 0.
        assert knapsack_greedy([0.0, 0.0], [1.0, 1.0], 10.0).profit == 0.0

    def test_zero_profit_items_never_chosen(self):
        # Mixed instance: zero-profit items are skipped by the DP but
        # must not perturb reconstruction of the profitable ones.
        sol = knapsack_exact([0.0, 7.0, 0.0, 3.0], [1.0, 2.0, 1.0, 2.0], 4.0)
        assert set(sol.indices) == {1, 3}
        assert sol.profit == 10.0

    def test_dp_guard_single_huge_item(self):
        # The guard must fire before allocating the table, even at n=1.
        with pytest.raises(ValueError, match="cells"):
            knapsack_exact([300_000_000.0], [1.0], 10.0)

    def test_dp_guard_suggests_remedy(self):
        with pytest.raises(ValueError, match="increase eps"):
            knapsack_exact(np.full(2000, 1e6), np.ones(2000), 10.0)

    def test_packed_take_table_matches_bruteforce(self):
        # Bit-packed reconstruction against exhaustive ground truth on
        # instances large enough to span several packed bytes per row.
        rng = np.random.default_rng(3)
        for _ in range(10):
            n = 18
            profits = rng.integers(0, 60, n).astype(float)
            weights = rng.uniform(0.5, 8.0, n)
            capacity = float(weights.sum() * rng.uniform(0.2, 0.8))
            exact = knapsack_exact(profits, weights, capacity)
            brute = knapsack_bruteforce(profits, weights, capacity)
            assert exact.profit == pytest.approx(brute.profit)
            assert exact.weight <= capacity + 1e-9
            assert exact.profit == pytest.approx(
                sum(profits[i] for i in exact.indices)
            )

    def test_uniform_instance_reconstruction(self):
        # 50 equal items, ~1000 DP cells: reconstruction must walk the
        # packed rows to exactly the capacity-limited item count.
        from repro.core.knapsack import _profit_dp

        int_profits = np.full(50, 20, dtype=np.int64)
        weights = np.ones(50)
        chosen = _profit_dp(int_profits, weights, 10.0)
        assert len(chosen) == 10  # capacity admits exactly 10 unit weights


class TestScaling:
    def test_fptas_handles_large_profits(self):
        rng = np.random.default_rng(0)
        profits = rng.uniform(1e5, 1e7, 50)
        weights = rng.uniform(1.0, 10.0, 50)
        sol = knapsack_fptas(profits, weights, 25.0, eps=0.1)
        assert sol.weight <= 25.0
        greedy = knapsack_greedy(profits, weights, 25.0)
        assert sol.profit >= 0.9 * greedy.profit

    def test_dp_table_guard(self):
        # Profits scaled such that the DP table would explode.
        n = 2000
        profits = np.full(n, 1e6)
        weights = np.ones(n)
        with pytest.raises(ValueError, match="cells"):
            knapsack_exact(profits, weights, 10.0)
