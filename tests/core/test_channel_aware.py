"""Tests for channel-aware batch placement."""

from __future__ import annotations

import pytest

from repro._util import HOUR
from repro.core import compare_placements, place_blind, place_channel_aware
from repro.habits.prediction import Slot
from repro.radio import ChannelModel, LinkModel


@pytest.fixture
def channel():
    return ChannelModel(seed=5)


@pytest.fixture
def link():
    return LinkModel(bandwidth_bps=24000.0)


class TestPlacement:
    def test_blind_packs_at_slot_start(self, channel, link):
        slot = Slot(9 * HOUR, 11 * HOUR)
        batch = place_blind(slot, 48000.0, link, channel)
        assert batch.start == slot.start
        assert batch.payload_bytes == 48000.0

    def test_aware_stays_inside_slot(self, channel, link):
        slot = Slot(9 * HOUR, 11 * HOUR)
        batch = place_channel_aware(slot, 48000.0, link, channel)
        assert slot.start <= batch.start
        assert batch.start + batch.duration_s <= slot.end + channel.resolution_s

    def test_aware_never_worse_quality(self, channel, link):
        slot = Slot(6 * HOUR, 12 * HOUR)
        blind = place_blind(slot, 480000.0, link, channel)
        aware = place_channel_aware(slot, 480000.0, link, channel)
        assert aware.energy_multiplier <= blind.energy_multiplier + 1e-9
        assert aware.effective_rate_bps >= blind.effective_rate_bps - 1e-9

    def test_rejects_zero_payload(self, channel, link):
        slot = Slot(0.0, HOUR)
        with pytest.raises(ValueError):
            place_blind(slot, 0.0, link, channel)


class TestComparison:
    def test_gains_non_negative(self, channel, link):
        slots = [Slot(h * HOUR, (h + 3) * HOUR) for h in (0, 6, 12, 18)]
        payloads = [100_000.0] * 4
        comparison = compare_placements(slots, payloads, link, channel)
        assert comparison.energy_multiplier_gain >= -1e-9
        assert comparison.rate_gain >= 1.0 - 1e-9

    def test_empty(self, channel, link):
        comparison = compare_placements([], [], link, channel)
        assert comparison.energy_multiplier_gain == 0.0
        assert comparison.rate_gain == 1.0

    def test_length_mismatch(self, channel, link):
        with pytest.raises(ValueError, match="pair up"):
            compare_placements([Slot(0.0, HOUR)], [], link, channel)
