"""Tests for the real-time adjustment layer (gap servicing)."""

from __future__ import annotations

import pytest

from repro.core import GapServicer, RealTimeAdjustment
from repro.habits import SpecialAppRegistry
from repro.traces import NetworkActivity


def _pending(t, dur=4.0):
    return NetworkActivity(t, "app", 1000.0, 100.0, dur, False)


class TestGapServicer:
    def test_idle_gap_only_wakes(self):
        servicer = GapServicer(initial_s=30.0)
        result = servicer.service(0.0, 300.0, [])
        assert result.executed == []
        assert result.serviced == 0
        # Exponential: wakes at 30, 91, 212.
        assert len(result.wake_windows) == 3

    def test_pending_serviced_at_first_wake_after_arrival(self):
        servicer = GapServicer(initial_s=30.0)
        result = servicer.service(0.0, 300.0, [_pending(10.0)])
        assert result.serviced == 1
        assert result.executed[0].time == pytest.approx(30.0)

    def test_service_resets_backoff(self):
        servicer = GapServicer(initial_s=30.0)
        result = servicer.service(0.0, 400.0, [_pending(10.0)])
        # After servicing at t=30 (4 s transfer + pack gap), the scheme
        # restarts at 30 s: next wakes near 64, then ~125, ~246.
        later = [lo for lo, _ in result.wake_windows]
        assert later[0] == pytest.approx(30.0 + 4.0 + 0.2 + 30.0)

    def test_multiple_pending_packed(self):
        servicer = GapServicer(initial_s=30.0)
        result = servicer.service(0.0, 300.0, [_pending(5.0), _pending(6.0)])
        assert result.serviced == 2
        a, b = sorted(result.executed, key=lambda x: x.time)
        assert b.time == pytest.approx(a.time + a.duration + 0.2)

    def test_carried_to_gap_end(self):
        # Pending arrives too late for any wake: it rides the gap end.
        servicer = GapServicer(initial_s=30.0)
        result = servicer.service(0.0, 60.0, [_pending(55.0)])
        assert result.carried_to_end == 1
        assert result.executed[0].time == pytest.approx(60.0)

    def test_rejects_out_of_gap_pending(self):
        servicer = GapServicer()
        with pytest.raises(ValueError, match="outside gap"):
            servicer.service(0.0, 100.0, [_pending(500.0)])

    def test_rejects_inverted_gap(self):
        with pytest.raises(ValueError):
            GapServicer().service(100.0, 0.0, [])

    def test_short_gap_no_wakes(self):
        result = GapServicer(initial_s=30.0).service(0.0, 20.0, [])
        assert result.wake_windows == []

    def test_wake_window_length(self):
        servicer = GapServicer(initial_s=30.0, wake_window_s=2.0)
        result = servicer.service(0.0, 100.0, [])
        lo, hi = result.wake_windows[0]
        assert hi - lo == pytest.approx(2.0)

    def test_zero_length_gap(self):
        result = GapServicer(initial_s=30.0).service(50.0, 50.0, [])
        assert result.executed == []
        assert result.wake_windows == []
        assert result.serviced == 0

    def test_activity_exactly_at_gap_end_rejected(self):
        # The gap interval is half-open: an arrival at gap_end belongs
        # to the next screen session, not to this gap.
        servicer = GapServicer(initial_s=30.0)
        with pytest.raises(ValueError, match="outside gap"):
            servicer.service(0.0, 100.0, [_pending(100.0)])

    def test_activity_exactly_at_gap_start(self):
        servicer = GapServicer(initial_s=30.0)
        result = servicer.service(0.0, 300.0, [_pending(0.0)])
        assert result.serviced == 1
        assert result.executed[0].time == pytest.approx(30.0)

    def test_wake_exactly_on_gap_boundary(self):
        # initial_s equal to the gap length: the first wake would land
        # exactly on gap_end, where the screen is back on — no wake.
        result = GapServicer(initial_s=30.0).service(0.0, 30.0, [])
        assert result.wake_windows == []
        result = GapServicer(initial_s=30.0).service(0.0, 30.0 + 1e-6, [])
        assert len(result.wake_windows) == 1

    def test_backoff_resets_after_serviced_burst(self):
        servicer = GapServicer(initial_s=30.0)
        result = servicer.service(0.0, 2000.0, [_pending(10.0), _pending(400.0)])
        assert result.serviced == 2
        wakes = [lo for lo, _ in result.wake_windows]
        # First burst serviced at t=30; scheme restarts at 30 s intervals.
        first_after_burst = next(w for w in wakes if w > 30.0)
        assert first_after_burst == pytest.approx(30.0 + 4.0 + 0.2 + 30.0)
        # The second pending is serviced at the first wake after t=400,
        # and the interval right after it shrinks back to initial_s.
        second_service = sorted(result.executed, key=lambda a: a.time)[1].time
        first_after_second = next(w for w in wakes if w > second_service)
        assert first_after_second == pytest.approx(
            second_service + 4.0 + 0.2 + 30.0
        )


class TestRealTimeAdjustment:
    def test_special_app_gating(self, tiny_trace):
        adjustment = RealTimeAdjustment(
            special_apps=SpecialAppRegistry.from_trace(tiny_trace)
        )
        assert adjustment.allow_radio("com.tencent.mm")
        assert not adjustment.allow_radio("com.android.email")
        assert adjustment.allow_radio("never.seen.app")
