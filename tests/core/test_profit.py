"""Tests for the profit model and MKP instance construction."""

from __future__ import annotations

import pytest

from repro._util import HOUR
from repro.core import (
    PlannedActivity,
    ProfitParams,
    adjacent_slots,
    build_instance,
    expected_activities,
    placement_profit,
    slot_capacity_bytes,
)
from repro.habits import HabitModel
from repro.habits.prediction import Slot
from repro.radio import LinkModel, wcdma_model

from tests.habits.test_prediction import _repeating_trace


@pytest.fixture
def habit_model():
    return HabitModel.fit(_repeating_trace())


@pytest.fixture
def params():
    return ProfitParams(power=wcdma_model(), link=LinkModel(bandwidth_bps=1000.0))


class TestPlannedActivity:
    def test_validation(self):
        with pytest.raises(ValueError):
            PlannedActivity(hour=24, index=0, payload_bytes=1.0, duration_s=1.0, nominal_time=0.0)
        with pytest.raises(ValueError):
            PlannedActivity(hour=0, index=0, payload_bytes=1.0, duration_s=0.0, nominal_time=0.0)
        with pytest.raises(ValueError):
            PlannedActivity(hour=0, index=0, payload_bytes=1.0, duration_s=1.0, nominal_time=-1.0)


class TestExpectedActivities:
    def test_one_per_habitual_hour(self, habit_model):
        planned = expected_activities(habit_model, weekend=False)
        hours = {a.hour for a in planned}
        assert 3 in hours  # the nightly sync

    def test_counts_round(self, habit_model):
        planned = [a for a in expected_activities(habit_model, weekend=False) if a.hour == 3]
        assert len(planned) == 1
        assert planned[0].payload_bytes == pytest.approx(1100.0)
        assert planned[0].duration_s == pytest.approx(4.0)

    def test_min_expected_count_filter(self, habit_model):
        none = expected_activities(habit_model, weekend=False, min_expected_count=2.0)
        assert all(a.hour != 3 for a in none)

    def test_nominal_times_spread(self):
        # Synthetic: an hour with expected count 3 spreads pseudo-items.
        import numpy as np

        from repro.habits.prediction import HabitModel as HM

        model = HM(
            user_id="x",
            n_weekdays=1,
            n_weekends=0,
            weekday_user_probs=np.zeros(24),
            weekend_user_probs=np.zeros(24),
            weekday_net_counts=np.eye(1, 24, 5)[0] * 3.0,
            weekend_net_counts=np.zeros(24),
            weekday_net_bytes=np.eye(1, 24, 5)[0] * 3000.0,
            weekend_net_bytes=np.zeros(24),
            weekday_net_seconds=np.eye(1, 24, 5)[0] * 12.0,
            weekend_net_seconds=np.zeros(24),
            weekday_screen_seconds=np.zeros(24),
            weekend_screen_seconds=np.zeros(24),
        )
        planned = expected_activities(model, weekend=False)
        assert len(planned) == 3
        times = [a.nominal_time for a in planned]
        assert all(5 * HOUR < t < 6 * HOUR for t in times)
        assert times == sorted(times)


class TestSlotCapacity:
    def test_capacity_from_screen_seconds(self, habit_model, params):
        slot = Slot(9 * HOUR, 10 * HOUR)
        capacity = slot_capacity_bytes(habit_model, slot, params.link, weekend=False)
        # 60 screen-seconds expected in hour 9, at 1000 B/s.
        assert capacity == pytest.approx(60_000.0)

    def test_partial_hour_prorated(self, habit_model, params):
        slot = Slot(9 * HOUR, 9.5 * HOUR)
        capacity = slot_capacity_bytes(habit_model, slot, params.link, weekend=False)
        assert capacity == pytest.approx(30_000.0)


class TestAdjacentSlots:
    def test_between_two_slots(self):
        slots = (Slot(0.0, HOUR), Slot(5 * HOUR, 6 * HOUR))
        prev_idx, next_idx = adjacent_slots(slots, 3 * HOUR)
        assert (prev_idx, next_idx) == (0, 1)

    def test_before_all(self):
        slots = (Slot(5 * HOUR, 6 * HOUR),)
        assert adjacent_slots(slots, HOUR) == (None, 0)

    def test_after_all(self):
        slots = (Slot(5 * HOUR, 6 * HOUR),)
        assert adjacent_slots(slots, 10 * HOUR) == (0, None)

    def test_inside_slot(self):
        slots = (Slot(5 * HOUR, 6 * HOUR),)
        assert adjacent_slots(slots, 5.5 * HOUR) == (0, 0)


class TestPlacementProfit:
    def test_inside_slot_no_penalty(self, habit_model, params):
        activity = PlannedActivity(9, 0, 1000.0, 4.0, 9 * HOUR + 600.0)
        slot = Slot(9 * HOUR, 10 * HOUR)
        profit = placement_profit(activity, slot, habit_model, params, weekend=False)
        assert profit == pytest.approx(params.power.saved_energy_j(4.0))

    def test_penalty_free_when_no_usage_mass(self, habit_model, params):
        """Deferring across hours the user never touches costs nothing —
        the Eq. (4) integral is zero."""
        activity = PlannedActivity(3, 0, 1000.0, 4.0, 3 * HOUR + 1800.0)
        near = Slot(9 * HOUR, 10 * HOUR)
        profit = placement_profit(activity, near, habit_model, params, weekend=False)
        assert profit == pytest.approx(params.power.saved_energy_j(4.0))

    def test_deferral_across_usage_mass_penalized(self, habit_model, params):
        """Deferring past a probability-1 usage hour pays Eq. (4)."""
        activity = PlannedActivity(3, 0, 1000.0, 4.0, 3 * HOUR + 1800.0)
        far = Slot(20 * HOUR, 21 * HOUR)  # interval crosses hour 9 (Pr=1)
        profit = placement_profit(activity, far, habit_model, params, weekend=False)
        assert profit < params.power.saved_energy_j(4.0)

    def test_larger_et_means_lower_profit(self, habit_model):
        activity = PlannedActivity(3, 0, 1000.0, 4.0, 3 * HOUR + 1800.0)
        slot = Slot(20 * HOUR, 21 * HOUR)
        small = ProfitParams(power=wcdma_model(), et_w=1e-7)
        large = ProfitParams(power=wcdma_model(), et_w=1e-4)
        assert placement_profit(
            activity, slot, habit_model, small, weekend=False
        ) > placement_profit(activity, slot, habit_model, large, weekend=False)

    def test_prefetch_direction_symmetric(self, habit_model, params):
        """A slot before the activity is priced over the same interval."""
        activity = PlannedActivity(12, 0, 1000.0, 4.0, 12 * HOUR + 1800.0)
        before = Slot(9 * HOUR, 10 * HOUR)
        profit = placement_profit(activity, before, habit_model, params, weekend=False)
        assert profit <= params.power.saved_energy_j(4.0)


class TestBuildInstance:
    def test_instance_structure(self, habit_model, params):
        prediction = habit_model.user_slots(weekend=False)
        instance = build_instance(habit_model, prediction, params, weekend=False)
        assert len(instance.slots) == len(prediction.slots)
        # The 3am sync lies outside U and should become an item (its ΔE
        # dwarfs any penalty at default e_t).
        assert instance.n_planned >= 1
        for item in instance.items:
            activity = instance.activity_info[item.item_id]
            assert not prediction.active_hours[activity.hour]

    def test_in_slot_expectations_excluded(self, habit_model, params):
        prediction = habit_model.user_slots(weekend=False)
        instance = build_instance(habit_model, prediction, params, weekend=False)
        planned_hours = {instance.activity_info[i.item_id].hour for i in instance.items}
        assert 9 not in planned_hours and 20 not in planned_hours

    def test_unprofitable_items_unplaced(self):
        # A trace whose deferral interval crosses occasional usage (hour 6
        # used 1 day in 6, below delta but nonzero) plus an enormous e_t
        # makes every placement of the 3am sync unprofitable.
        from repro.traces import AppUsage, ScreenSession, Trace
        from repro._util import DAY

        base = _repeating_trace()
        extra_t = 6 * HOUR + 50.0
        trace = Trace(
            user_id=base.user_id,
            n_days=base.n_days,
            start_weekday=base.start_weekday,
            screen_sessions=base.screen_sessions
            + [ScreenSession(extra_t, extra_t + 30.0)],
            usages=base.usages + [AppUsage(extra_t, "browser", 30.0)],
            activities=base.activities,
        )
        model = HabitModel.fit(trace)
        params = ProfitParams(power=wcdma_model(), et_w=10.0)
        from repro.habits import FixedDelta

        prediction = model.user_slots(weekend=False, strategy=FixedDelta(0.25))
        assert not prediction.active_hours[6]  # Pr=0.2, below delta=0.25
        instance = build_instance(model, prediction, params, weekend=False)
        planned_hours = {instance.activity_info[i.item_id].hour for i in instance.items}
        assert 3 not in planned_hours
        assert any(a.hour == 3 for a in instance.unplaced)
