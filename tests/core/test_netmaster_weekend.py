"""Weekend and edge-path coverage for the NetMaster middleware."""

from __future__ import annotations

import pytest

from repro._util import DAY
from repro.core import NetMaster, NetMasterConfig
from repro.traces import AppUsage, NetworkActivity, ScreenSession, Trace


@pytest.fixture(scope="module")
def trained(history):
    nm = NetMaster()
    nm.train(history)
    return nm


class TestWeekendPath:
    def test_weekend_day_uses_weekend_prediction(self, trained, volunteer):
        # Day 12 of a Monday-start 14-day trace is a Saturday.
        weekend_day = volunteer.day_view(12)
        assert weekend_day.is_weekend_day(0)
        execution = trained.execute_day(weekend_day)
        assert execution.weekend is True
        assert execution.plan.prediction.delta == 0.1  # paper's weekend δ

    def test_weekday_delta(self, trained, volunteer):
        weekday = volunteer.day_view(10)
        assert not weekday.is_weekend_day(0)
        execution = trained.execute_day(weekday)
        assert execution.plan.prediction.delta == 0.2

    def test_weekend_payload_conserved(self, trained, volunteer):
        weekend_day = volunteer.day_view(12)
        execution = trained.execute_day(weekend_day)
        src = sum(a.total_bytes for a in weekend_day.activities)
        out = sum(a.total_bytes for a in execution.activities)
        assert out == pytest.approx(src)


class TestDegenerateDays:
    def test_empty_day(self, trained):
        empty = Trace(user_id="empty", n_days=1, start_weekday=0)
        execution = trained.execute_day(empty)
        assert execution.activities == []
        assert execution.interrupts == 0
        # Duty cycle still covers the whole idle day.
        assert len(execution.wake_windows) > 0

    def test_day_with_only_background(self, trained):
        day = Trace(
            user_id="bgonly",
            n_days=1,
            start_weekday=0,
            activities=[
                NetworkActivity(3 * 3600.0, "com.android.email", 900.0, 90.0, 4.0, False)
            ],
        )
        execution = trained.execute_day(day)
        assert len(execution.activities) == 1
        assert execution.user_interactions == 0
        assert execution.interrupt_ratio == 0.0

    def test_activity_near_midnight_clamped(self, trained):
        day = Trace(
            user_id="late",
            n_days=1,
            start_weekday=0,
            activities=[
                NetworkActivity(DAY - 3.0, "com.android.email", 900.0, 90.0, 2.5, False)
            ],
        )
        execution = trained.execute_day(day)
        activity = execution.activities[0]
        assert activity.end <= DAY + 1e-6

    def test_unknown_foreground_app_never_interrupts(self, trained):
        day = Trace(
            user_id="newapp",
            n_days=1,
            start_weekday=0,
            screen_sessions=[ScreenSession(3 * 3600.0, 3 * 3600.0 + 30.0)],
            usages=[AppUsage(3 * 3600.0, "brand.new.game", 30.0)],
            activities=[
                NetworkActivity(
                    3 * 3600.0 + 5.0, "brand.new.game", 5000.0, 500.0, 10.0, True
                )
            ],
        )
        execution = trained.execute_day(day)
        # 3am is outside every predicted slot, but new apps default to
        # special, so the radio comes up and no interrupt is charged.
        assert execution.interrupts == 0

    def test_known_nonspecial_app_interrupts(self, trained):
        # An app seen only as background traffic in history is known but
        # not special: a surprise foreground use outside the slots is the
        # "wrong decision" case.
        nonspecial = next(
            app
            for app in trained.habit.special_apps.seen
            if not trained.habit.special_apps.is_special(app)
        )
        day = Trace(
            user_id="surprise",
            n_days=1,
            start_weekday=0,
            screen_sessions=[ScreenSession(3 * 3600.0, 3 * 3600.0 + 30.0)],
            usages=[AppUsage(3 * 3600.0, nonspecial, 30.0)],
            activities=[
                NetworkActivity(3 * 3600.0 + 5.0, nonspecial, 5000.0, 500.0, 10.0, True)
            ],
        )
        execution = trained.execute_day(day)
        assert execution.interrupts == 1
