"""Tests for the NetMaster scheduler and DayPlan runtime admission."""

from __future__ import annotations

import pytest

from repro._util import HOUR
from repro.core import NetMasterScheduler, ProfitParams
from repro.habits import HabitModel
from repro.radio import LinkModel, wcdma_model

from tests.habits.test_prediction import _repeating_trace


@pytest.fixture
def scheduler():
    model = HabitModel.fit(_repeating_trace())
    params = ProfitParams(power=wcdma_model(), link=LinkModel(bandwidth_bps=1000.0))
    return NetMasterScheduler(habit=model, params=params, eps=0.1)


class TestPlanConstruction:
    def test_plan_builds(self, scheduler):
        plan = scheduler.plan(weekend=False)
        assert plan.weekend is False
        assert plan.prediction.delta == 0.2

    def test_night_sync_scheduled(self, scheduler):
        plan = scheduler.plan(weekend=False)
        assert 3 in plan.hour_slots
        slot_id = plan.hour_slots[3][0]
        slot = plan.slot(slot_id)
        # Adjacent user-active slot: hour 9 or hour 20 of the day.
        assert slot.start in (9 * HOUR, 20 * HOUR)

    def test_scheduled_fraction(self, scheduler):
        plan = scheduler.plan(weekend=False)
        assert 0.0 < plan.scheduled_fraction <= 1.0

    def test_planned_hours_sorted(self, scheduler):
        plan = scheduler.plan(weekend=False)
        assert plan.planned_hours == sorted(plan.planned_hours)

    def test_eps_validation(self, scheduler):
        with pytest.raises(ValueError):
            NetMasterScheduler(habit=scheduler.habit, params=scheduler.params, eps=0.0)


class TestAdmission:
    def test_admit_consumes_capacity(self, scheduler):
        plan = scheduler.plan(weekend=False)
        slot_id = plan.hour_slots[3][0]
        before = plan.capacity_left[slot_id]
        admitted = plan.admit(3, 500.0)
        assert admitted == slot_id
        assert plan.capacity_left[slot_id] == pytest.approx(before - 500.0)

    def test_admit_unknown_hour(self, scheduler):
        plan = scheduler.plan(weekend=False)
        assert plan.admit(15, 100.0) is None

    def test_admit_over_capacity(self, scheduler):
        plan = scheduler.plan(weekend=False)
        assert plan.admit(3, 1e12) is None

    def test_admit_until_exhausted(self, scheduler):
        plan = scheduler.plan(weekend=False)
        slot_id = plan.hour_slots[3][0]
        payload = plan.capacity_left[slot_id] * 0.6
        assert plan.admit(3, payload) is not None
        assert plan.admit(3, payload) is None  # no slot can take a second

    def test_reset_restores(self, scheduler):
        plan = scheduler.plan(weekend=False)
        slot_id = plan.hour_slots[3][0]
        full = plan.capacity_left[slot_id]
        plan.admit(3, 500.0)
        plan.reset()
        assert plan.capacity_left[slot_id] == pytest.approx(full)


class TestExecutionTimes:
    def test_packing_advances_cursor(self, scheduler):
        plan = scheduler.plan(weekend=False)
        slot_id = plan.hour_slots[3][0]
        t1 = plan.execution_time(slot_id, 4.0)
        t2 = plan.execution_time(slot_id, 4.0)
        assert t1 == plan.slot(slot_id).start
        assert t2 > t1 + 4.0 - 1e-9

    def test_packed_transfers_stay_contiguous(self, scheduler):
        """Packed gaps are smaller than the DCH tail, so the whole batch
        rides one radio session."""
        from repro.core.scheduler import PACK_GAP_S

        assert PACK_GAP_S < wcdma_model().dch_tail_s
