"""Columnar batch pricing vs the per-cell measurement path.

``core.batch`` prices whole (outcome, day) grids through the lane
kernel; every row must equal ``measure_outcome`` on that cell exactly —
including outcomes with extra wake windows, per-activity tails, and
fault surcharges, which exercise the scalar adjustment path on top of
the batched RRC base.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    DelayBatchPolicy,
    NaivePolicy,
    NetMasterPolicy,
    OraclePolicy,
)
from repro.baselines.policy import PolicyOutcome
from repro.core.batch import measure_outcomes_columnar, run_policy_tasks_columnar
from repro.core.netmaster import NetMasterConfig
from repro.evaluation import split_history
from repro.evaluation.metrics import measure_outcome, run_policy_over_days
from repro.runtime.parallel import PolicyTask, run_policy_tasks
from repro.traces.events import NetworkActivity


@pytest.fixture(scope="module")
def grid(volunteers, wcdma):
    tasks = []
    for trace in volunteers:
        history, days = split_history(trace, 10)
        for name, policy in (
            ("baseline", NaivePolicy()),
            ("oracle", OraclePolicy()),
            ("netmaster", NetMasterPolicy(history, NetMasterConfig())),
            ("delay-batch", DelayBatchPolicy(60.0)),
        ):
            tasks.append(
                PolicyTask(name=name, policy=policy, days=tuple(days), model=wcdma)
            )
    return tasks


def test_measure_outcomes_columnar_matches_per_cell(grid, wcdma):
    from repro.runtime.parallel import execute_policy_tasks

    outcomes = execute_policy_tasks(grid, jobs=1)
    cells = [
        (outcome, day)
        for task, outs in zip(grid, outcomes)
        for day, outcome in zip(task.days, outs)
    ]
    columnar = measure_outcomes_columnar(cells, wcdma)
    per_cell = [measure_outcome(o, wcdma, day) for o, day in cells]
    assert columnar == per_cell


def test_run_policy_tasks_columnar_matches_per_lane(grid):
    columnar = run_policy_tasks_columnar(grid, jobs=1)
    per_lane = run_policy_tasks(grid, jobs=1)
    assert columnar == per_lane


def test_mixed_models_grouped(volunteers, wcdma, lte):
    _, days = split_history(volunteers[0], 10)
    tasks = [
        PolicyTask(name="w", policy=NaivePolicy(), days=tuple(days), model=wcdma),
        PolicyTask(name="l", policy=NaivePolicy(), days=tuple(days), model=lte),
    ]
    columnar = run_policy_tasks_columnar(tasks)
    per_lane = run_policy_tasks(tasks)
    assert columnar == per_lane


def test_run_policy_over_days_columnar_kwarg(volunteers, wcdma):
    _, days = split_history(volunteers[0], 10)
    for policy in (NaivePolicy(), DelayBatchPolicy(120.0)):
        plain = run_policy_over_days(policy, days, wcdma)
        columnar = run_policy_over_days(policy, days, wcdma, columnar=True)
        assert columnar == plain


def test_fault_surcharges_match(test_day, wcdma):
    # Hand-built outcomes exercising finalize_energy: wake windows,
    # failed partial windows with per-activity tails, failed promotions.
    acts = list(test_day.activities)
    base = PolicyOutcome(policy="faulty", activities=acts)
    with_wakes = PolicyOutcome(
        policy="faulty",
        activities=acts,
        extra_windows=[(10.0, 12.0), (500.0, 501.0)],
        failed_promotions=2,
    )
    with_tails = PolicyOutcome(
        policy="faulty",
        activities=acts,
        activity_tails=[0.0] * len(acts),
        failed_windows=[(90.0, 95.0)],
        retries=1,
    )
    cells = [(base, test_day), (with_wakes, test_day), (with_tails, test_day)]
    columnar = measure_outcomes_columnar(cells, wcdma)
    per_cell = [measure_outcome(o, wcdma, day) for o, day in cells]
    assert columnar == per_cell


def test_payload_validation_still_raises(test_day, wcdma):
    dropped = PolicyOutcome(
        policy="lossy",
        activities=[
            NetworkActivity(3600.0, "com.android.email", 1.0, 1.0, 5.0, False)
        ],
    )
    with pytest.raises(ValueError, match="payload not conserved"):
        measure_outcomes_columnar([(dropped, test_day)], wcdma)


def test_empty_cells():
    from repro.radio import wcdma_model

    assert measure_outcomes_columnar([], wcdma_model()) == []
    assert run_policy_tasks_columnar([]) == []
