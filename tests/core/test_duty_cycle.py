"""Tests for duty-cycle sleep schemes and the controller."""

from __future__ import annotations

import pytest

from repro.core import (
    DutyCycleController,
    ExponentialSleep,
    FixedSleep,
    RandomSleep,
    radio_on_fraction_after,
    wakeup_count,
    wakeup_times,
)


class TestExponentialSleep:
    def test_doubling_sequence(self):
        scheme = ExponentialSleep(initial_s=30.0)
        assert [scheme.next_sleep_s() for _ in range(4)] == [30.0, 60.0, 120.0, 240.0]

    def test_cap(self):
        scheme = ExponentialSleep(initial_s=30.0, max_s=100.0)
        intervals = [scheme.next_sleep_s() for _ in range(5)]
        assert intervals == [30.0, 60.0, 100.0, 100.0, 100.0]

    def test_reset(self):
        scheme = ExponentialSleep(initial_s=30.0)
        scheme.next_sleep_s()
        scheme.next_sleep_s()
        scheme.reset()
        assert scheme.next_sleep_s() == 30.0

    def test_custom_factor(self):
        scheme = ExponentialSleep(initial_s=10.0, factor=3.0)
        assert [scheme.next_sleep_s() for _ in range(3)] == [10.0, 30.0, 90.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialSleep(initial_s=0.0)
        with pytest.raises(ValueError):
            ExponentialSleep(factor=0.5)


class TestFixedAndRandom:
    def test_fixed_constant(self):
        scheme = FixedSleep(interval_s=12.0)
        assert [scheme.next_sleep_s() for _ in range(3)] == [12.0, 12.0, 12.0]

    def test_random_in_range(self):
        scheme = RandomSleep(lo_s=5.0, hi_s=10.0, seed=0)
        for _ in range(50):
            assert 5.0 <= scheme.next_sleep_s() <= 10.0

    def test_random_reproducible(self):
        a = RandomSleep(lo_s=1.0, hi_s=9.0, seed=3)
        b = RandomSleep(lo_s=1.0, hi_s=9.0, seed=3)
        assert [a.next_sleep_s() for _ in range(5)] == [b.next_sleep_s() for _ in range(5)]

    def test_random_validation(self):
        with pytest.raises(ValueError):
            RandomSleep(lo_s=10.0, hi_s=5.0)


class TestController:
    def test_wakeups_inside_period(self):
        controller = DutyCycleController(ExponentialSleep(initial_s=30.0))
        times = controller.wakeups(0.0, 300.0)
        assert times == [30.0, 91.0, 212.0]

    def test_empty_period(self):
        controller = DutyCycleController(FixedSleep(30.0))
        assert controller.wakeups(100.0, 100.0) == []

    def test_rejects_inverted_period(self):
        controller = DutyCycleController(FixedSleep(30.0))
        with pytest.raises(ValueError):
            controller.wakeups(100.0, 50.0)

    def test_wake_windows_clipped(self):
        controller = DutyCycleController(FixedSleep(30.0), wake_window_s=5.0)
        windows = controller.wake_windows(0.0, 32.0)
        assert windows == [(30.0, 32.0)]

    def test_scheme_reset_per_period(self):
        controller = DutyCycleController(ExponentialSleep(initial_s=10.0))
        first = controller.wakeups(0.0, 100.0)
        second = controller.wakeups(1000.0, 1100.0)
        assert [t - 1000.0 for t in second] == first


class TestFig10Helpers:
    def test_wakeup_count_fixed(self):
        # 30 min at ~5 s period + 1 s window -> ~300 wakeups.
        count = wakeup_count(FixedSleep(5.0), 1800.0)
        assert 295 <= count <= 300

    def test_exponential_far_fewer(self):
        exp = wakeup_count(ExponentialSleep(initial_s=5.0), 1800.0)
        fixed = wakeup_count(FixedSleep(5.0), 1800.0)
        assert exp < fixed / 10  # Fig. 10(b)'s separation

    def test_wakeup_times_monotone(self):
        times = wakeup_times(ExponentialSleep(initial_s=5.0), 1800.0)
        assert times == sorted(times)

    def test_radio_on_fraction_decreases_with_interval(self):
        """Fig. 10(a): longer sleeps -> lower radio-on fraction."""
        fractions = [
            radio_on_fraction_after(ExponentialSleep(initial_s=t), 10)
            for t in (5.0, 30.0, 120.0, 360.0)
        ]
        assert fractions == sorted(fractions, reverse=True)

    def test_radio_on_fraction_decreases_with_wakeups(self):
        """Exponential backoff: later wake-ups are ever sparser."""
        scheme = ExponentialSleep(initial_s=5.0)
        fractions = [radio_on_fraction_after(scheme, k) for k in (2, 6, 10)]
        assert fractions == sorted(fractions, reverse=True)

    def test_radio_on_fraction_validation(self):
        with pytest.raises(ValueError):
            radio_on_fraction_after(FixedSleep(5.0), 0)
