"""Integration tests for the NetMaster middleware facade."""

from __future__ import annotations

import math

import pytest

from repro.core import NetMaster, NetMasterConfig
from repro.habits import FixedDelta
from repro.radio import activities_energy, simulate, wcdma_model


@pytest.fixture(scope="module")
def trained(history):
    nm = NetMaster()
    nm.train(history)
    return nm


class TestLifecycle:
    def test_requires_training(self, test_day):
        nm = NetMaster()
        with pytest.raises(RuntimeError, match="train"):
            nm.execute_day(test_day)
        with pytest.raises(RuntimeError, match="train"):
            nm.plan_day(weekend=False)

    def test_train_populates_components(self, trained):
        assert trained.habit is not None
        assert trained.scheduler is not None
        assert trained.adjustment is not None
        assert trained.store.n_days() >= 10

    def test_plan_day_fresh_each_call(self, trained):
        a = trained.plan_day(weekend=False)
        b = trained.plan_day(weekend=False)
        assert a is not b
        assert a.hour_slots == b.hour_slots

    def test_rejects_multiday_execution(self, trained, history):
        with pytest.raises(ValueError, match="single-day"):
            trained.execute_day(history)


class TestExecution:
    def test_payload_conserved(self, trained, test_day):
        execution = trained.execute_day(test_day)
        src = sum(a.total_bytes for a in test_day.activities)
        out = sum(a.total_bytes for a in execution.activities)
        assert out == pytest.approx(src)

    def test_activity_count_conserved(self, trained, test_day):
        execution = trained.execute_day(test_day)
        assert len(execution.activities) == len(test_day.activities)

    def test_tails_parallel_to_activities(self, trained, test_day):
        execution = trained.execute_day(test_day)
        assert len(execution.activity_tails) == len(execution.activities)
        assert all(t >= 0 for t in execution.activity_tails)

    def test_activities_sorted(self, trained, test_day):
        execution = trained.execute_day(test_day)
        times = [a.time for a in execution.activities]
        assert times == sorted(times)

    def test_dispatch_counts_add_up(self, trained, test_day):
        execution = trained.execute_day(test_day)
        screen_off = len(test_day.screen_off_activities())
        handled = (
            execution.immediate
            + execution.deferred_to_slots
            + execution.duty_serviced
            + execution.carried_to_gap_end
        )
        assert handled == screen_off

    def test_saves_energy_vs_stock(self, trained, test_day):
        execution = trained.execute_day(test_day)
        model = wcdma_model()
        before = activities_energy(test_day.activities, model)
        after = simulate(
            [a.interval for a in execution.activities],
            model,
            window_tails=execution.activity_tails,
        )
        assert after.energy_j < 0.6 * before.energy_j

    def test_interrupts_below_one_percent(self, trained, test_day):
        execution = trained.execute_day(test_day)
        assert execution.interrupt_ratio < 0.01

    def test_user_interactions_counted(self, trained, test_day):
        execution = trained.execute_day(test_day)
        assert execution.user_interactions == len(test_day.usages)


class TestConfigVariants:
    def test_unoptimized_in_slot_traffic_keeps_stock_tails(self, history, test_day):
        config = NetMasterConfig(optimize_in_slot_traffic=False)
        nm = NetMaster(config)
        nm.train(history)
        execution = nm.execute_day(test_day)
        assert any(math.isinf(t) for t in execution.activity_tails)

    def test_optimized_never_uses_stock_tails(self, trained, test_day):
        execution = trained.execute_day(test_day)
        assert not any(math.isinf(t) for t in execution.activity_tails)

    def test_delta_strategy_threads_through(self, history):
        nm = NetMaster(NetMasterConfig(delta=FixedDelta(0.45)))
        nm.train(history)
        plan = nm.plan_day(weekend=False)
        assert plan.prediction.delta == 0.45

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NetMasterConfig(eps=1.5)
        with pytest.raises(ValueError):
            NetMasterConfig(duty_initial_s=0.0)

    def test_guard_affects_energy(self, history, test_day):
        model = wcdma_model()

        def run(guard):
            nm = NetMaster(NetMasterConfig(guard_s=guard))
            nm.train(history)
            ex = nm.execute_day(test_day)
            return simulate(
                [a.interval for a in ex.activities],
                model,
                window_tails=ex.activity_tails,
            ).energy_j

        assert run(0.0) < run(5.0)
