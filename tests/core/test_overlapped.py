"""Tests for Algorithm 1 (overlapped multiple knapsack)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MKPItem, MKPSlot, solve_exact_bruteforce, solve_overlapped


def _slot(i, cap=10.0):
    return MKPSlot(i, cap)


class TestValidation:
    def test_item_needs_candidates(self):
        with pytest.raises(ValueError, match="candidate"):
            MKPItem(0, 1.0, {})

    def test_item_max_two_candidates(self):
        with pytest.raises(ValueError, match="at most"):
            MKPItem(0, 1.0, {0: 1.0, 1: 1.0, 2: 1.0})

    def test_negative_profit_rejected(self):
        with pytest.raises(ValueError, match="negative profit"):
            MKPItem(0, 1.0, {0: -1.0})

    def test_duplicate_slot_ids(self):
        with pytest.raises(ValueError, match="duplicate slot"):
            solve_overlapped([_slot(0), _slot(0)], [MKPItem(0, 1.0, {0: 1.0})])

    def test_duplicate_item_ids(self):
        with pytest.raises(ValueError, match="duplicate item"):
            solve_overlapped(
                [_slot(0)], [MKPItem(0, 1.0, {0: 1.0}), MKPItem(0, 1.0, {0: 1.0})]
            )

    def test_unknown_slot_reference(self):
        with pytest.raises(ValueError, match="unknown slots"):
            solve_overlapped([_slot(0)], [MKPItem(0, 1.0, {7: 1.0})])


class TestSmallInstances:
    def test_single_slot_single_item(self):
        sol = solve_overlapped([_slot(0, 5.0)], [MKPItem(0, 3.0, {0: 2.0})])
        assert sol.assignment == {0: 0}
        assert sol.total_profit == 2.0

    def test_item_too_heavy_everywhere(self):
        sol = solve_overlapped([_slot(0, 1.0)], [MKPItem(0, 3.0, {0: 2.0})])
        assert sol.assignment == {}

    def test_overlapped_item_assigned_once(self):
        slots = [_slot(0, 5.0), _slot(1, 5.0)]
        items = [MKPItem(0, 3.0, {0: 2.0, 1: 2.0})]
        sol = solve_overlapped(slots, items)
        assert len(sol.assignment) == 1

    def test_filtering_prefers_higher_profit(self):
        slots = [_slot(0, 5.0), _slot(1, 5.0)]
        items = [MKPItem(0, 3.0, {0: 1.0, 1: 9.0})]
        sol = solve_overlapped(slots, items)
        assert sol.assignment[0] == 1

    def test_filtering_tie_breaks_by_residual(self):
        # Equal profits: keep the tighter slot (smaller C - V).
        slots = [_slot(0, 100.0), _slot(1, 5.0)]
        items = [MKPItem(0, 3.0, {0: 2.0, 1: 2.0})]
        sol = solve_overlapped(slots, items)
        assert sol.assignment[0] == 1

    def test_greedy_add_fills_leftovers(self):
        # Slot 0 can only hold one item via the DP; the other must be
        # greedily added to slot 1.
        slots = [_slot(0, 3.0), _slot(1, 3.0)]
        items = [
            MKPItem(0, 3.0, {0: 5.0, 1: 5.0}),
            MKPItem(1, 3.0, {0: 4.0, 1: 4.0}),
        ]
        sol = solve_overlapped(slots, items)
        assert len(sol.assignment) == 2
        assert set(sol.assignment.values()) == {0, 1}

    def test_capacity_respected(self):
        slots = [_slot(0, 4.0)]
        items = [MKPItem(i, 3.0, {0: 1.0}) for i in range(5)]
        sol = solve_overlapped(slots, items)
        assert sol.slot_loads[0] <= 4.0
        assert len(sol.assignment) == 1

    def test_empty_items(self):
        sol = solve_overlapped([_slot(0)], [])
        assert sol.assignment == {} and sol.total_profit == 0.0


class TestBruteforce:
    def test_matches_hand_computed(self):
        slots = [_slot(0, 4.0), _slot(1, 4.0)]
        items = [
            MKPItem(0, 4.0, {0: 10.0}),
            MKPItem(1, 4.0, {0: 3.0, 1: 6.0}),
            MKPItem(2, 4.0, {1: 5.0}),
        ]
        sol = solve_exact_bruteforce(slots, items)
        # Best: item0->slot0 (10), item1 or item2 -> slot1 (6).
        assert sol.total_profit == 16.0

    def test_size_limit(self):
        items = [MKPItem(i, 1.0, {0: 1.0}) for i in range(15)]
        with pytest.raises(ValueError, match="14"):
            solve_exact_bruteforce([_slot(0)], items)


@st.composite
def mkp_instances(draw):
    n_slots = draw(st.integers(min_value=1, max_value=4))
    slots = [
        MKPSlot(i, draw(st.floats(min_value=1.0, max_value=20.0)))
        for i in range(n_slots)
    ]
    n_items = draw(st.integers(min_value=1, max_value=8))
    items = []
    for j in range(n_items):
        first = draw(st.integers(min_value=0, max_value=n_slots - 1))
        two = draw(st.booleans()) and n_slots > 1
        cands = [first, (first + 1) % n_slots] if two else [first]
        profits = {
            s: draw(st.floats(min_value=0.1, max_value=10.0)) for s in cands
        }
        items.append(MKPItem(j, draw(st.floats(min_value=0.1, max_value=10.0)), profits))
    return slots, items


class TestLemmaIV1:
    @given(instance=mkp_instances(), eps=st.sampled_from([0.1, 0.3]))
    @settings(max_examples=60, deadline=None)
    def test_approximation_bound(self, instance, eps):
        """Algorithm 1 achieves at least (1-ε)/2 of the optimum."""
        slots, items = instance
        approx = solve_overlapped(slots, items, eps=eps)
        exact = solve_exact_bruteforce(slots, items)
        if exact.total_profit > 0:
            ratio = approx.total_profit / exact.total_profit
            assert ratio >= (1.0 - eps) / 2.0 - 1e-9

    @given(instance=mkp_instances())
    @settings(max_examples=60, deadline=None)
    def test_feasibility(self, instance):
        slots, items = instance
        sol = solve_overlapped(slots, items, eps=0.1)
        sol.validate(slots, items)  # raises on violation
        # Each item at most once, only into candidate slots.
        for item_id, slot_id in sol.assignment.items():
            item = next(i for i in items if i.item_id == item_id)
            assert slot_id in item.profits

    @given(instance=mkp_instances())
    @settings(max_examples=40, deadline=None)
    def test_profit_totals_consistent(self, instance):
        slots, items = instance
        sol = solve_overlapped(slots, items, eps=0.1)
        by_id = {i.item_id: i for i in items}
        expected = sum(
            by_id[item_id].profits[slot_id]
            for item_id, slot_id in sol.assignment.items()
        )
        assert sol.total_profit == pytest.approx(expected)


class TestDeterminism:
    def test_same_instance_same_solution(self):
        rng = np.random.default_rng(4)
        slots = [MKPSlot(i, float(rng.uniform(5, 20))) for i in range(3)]
        items = [
            MKPItem(j, float(rng.uniform(1, 5)), {j % 3: float(rng.uniform(1, 9))})
            for j in range(10)
        ]
        a = solve_overlapped(slots, items)
        b = solve_overlapped(slots, items)
        assert a.assignment == b.assignment
