"""Cross-instance solver batching and SolutionMemo hygiene."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.knapsack import SolutionMemo
from repro.core.overlapped import (
    MKPItem,
    MKPSlot,
    clear_slot_memo,
    solve_overlapped,
    solve_overlapped_batch,
)
from repro.telemetry import isolated


def _random_instance(seed: int) -> tuple[list[MKPSlot], list[MKPItem]]:
    rng = np.random.default_rng(seed)
    n_slots = int(rng.integers(1, 5))
    slots = [MKPSlot(i, float(rng.uniform(2.0, 25.0))) for i in range(n_slots)]
    items = []
    for j in range(int(rng.integers(0, 10))):
        k = int(rng.integers(1, min(3, n_slots + 1)))
        cands = sorted(rng.choice(n_slots, size=k, replace=False).tolist())
        items.append(
            MKPItem(
                j,
                float(rng.uniform(0.5, 10.0)),
                {s: float(rng.uniform(0.1, 6.0)) for s in cands},
            )
        )
    return slots, items


class TestSolveOverlappedBatch:
    def test_matches_sequential_solves(self):
        instances = [_random_instance(s) for s in range(12)]
        clear_slot_memo()
        sequential = [solve_overlapped(s, i, eps=0.1) for s, i in instances]
        clear_slot_memo()
        batched = solve_overlapped_batch(instances, eps=0.1)
        assert len(batched) == len(sequential)
        for a, b in zip(sequential, batched):
            assert a.assignment == b.assignment
            assert a.total_profit == b.total_profit
            assert a.slot_loads == b.slot_loads

    def test_empty_batch(self):
        assert solve_overlapped_batch([]) == []

    def test_trivial_instances_skip_fptas(self):
        # All-fit slots and empty itemsets never reach the DP.
        slots = [MKPSlot(0, 100.0)]
        items = [MKPItem(0, 1.0, {0: 2.0})]
        (solution,) = solve_overlapped_batch([(slots, items)])
        assert solution.assignment == {0: 0}
        (empty,) = solve_overlapped_batch([(slots, [])])
        assert empty.assignment == {}

    def test_validation_matches_solve_overlapped(self):
        slots = [MKPSlot(0, 5.0), MKPSlot(0, 6.0)]
        with pytest.raises(ValueError, match="duplicate slot ids"):
            solve_overlapped_batch([(slots, [])])

    def test_counts_solves_per_instance(self):
        instances = [_random_instance(s) for s in range(3)]
        with isolated(with_tracing=False) as (reg, _):
            solve_overlapped_batch(instances)
            counters = reg.snapshot()["counters"]
        assert counters["core.overlapped.solves"] == 3


class TestSolutionMemoKnob:
    def test_default_maxsize(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOLVER_MEMO_MAX", raising=False)
        assert SolutionMemo().maxsize == SolutionMemo.DEFAULT_MAXSIZE

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER_MEMO_MAX", "7")
        assert SolutionMemo().maxsize == 7

    def test_explicit_maxsize_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER_MEMO_MAX", "7")
        assert SolutionMemo(maxsize=3).maxsize == 3

    @pytest.mark.parametrize("raw", ["0", "-5", "big", "1.5"])
    def test_invalid_env_rejected(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SOLVER_MEMO_MAX", raw)
        with pytest.raises(ValueError, match="REPRO_SOLVER_MEMO_MAX"):
            SolutionMemo()

    def test_evictions_counted(self):
        memo = SolutionMemo(maxsize=2)
        with isolated(with_tracing=False) as (reg, _):
            for i in range(5):
                key = SolutionMemo.key(
                    np.array([float(i)]), np.array([1.0]), 1.0, 0.1
                )
                memo.put(key, object())
            counters = reg.snapshot()["counters"]
        assert memo.evictions == 3
        assert len(memo) == 2
        assert counters["solver.memo_evictions"] == 3

    def test_no_evictions_below_cap(self):
        memo = SolutionMemo(maxsize=10)
        key = SolutionMemo.key(np.array([1.0]), np.array([1.0]), 1.0, 0.1)
        memo.put(key, object())
        assert memo.evictions == 0
