"""Integration tests for whole-device replay."""

from __future__ import annotations

import pytest

from repro.baselines import NetMasterPolicy
from repro.device import DeviceSimulator
from repro.habits import HabitModel
from repro.radio import TruncatedTail, trace_energy, wcdma_model


class TestStockReplay:
    def test_energy_matches_analytic(self, test_day, wcdma):
        report = DeviceSimulator().replay(test_day)
        analytic = trace_energy(test_day, wcdma)
        assert report.energy.energy_j == pytest.approx(analytic.energy_j)
        assert report.energy.radio_on_s == pytest.approx(analytic.radio_on_s)

    def test_all_activities_transferred(self, test_day):
        report = DeviceSimulator().replay(test_day)
        assert report.transfers == len(test_day.activities)
        assert report.refused == []

    def test_payload_matches(self, test_day):
        report = DeviceSimulator().replay(test_day)
        expected = sum(a.total_bytes for a in test_day.activities)
        assert report.payload_bytes == pytest.approx(expected)

    def test_monitoring_captured_the_day(self, test_day):
        report = DeviceSimulator().replay(test_day)
        assert len(report.store.screen_sessions) == len(test_day.screen_sessions)
        assert len(report.store.activities) == len(test_day.activities)

    def test_rejects_multiday(self, volunteer):
        with pytest.raises(ValueError, match="single-day"):
            DeviceSimulator().replay(volunteer)


class TestRescheduledReplay:
    def test_netmaster_schedule_through_device(self, history, test_day, wcdma):
        """The DES prices a NetMaster schedule like the analytic path."""
        policy = NetMasterPolicy(history)
        outcome = policy.execute_day(test_day)
        report = DeviceSimulator().replay(
            test_day,
            schedule=outcome.activities,
            tail_policy=TruncatedTail(1.0),
        )
        stock = DeviceSimulator().replay(test_day)
        assert report.energy.energy_j < stock.energy.energy_j
        assert report.transfers == len(outcome.activities)

    def test_data_off_windows_refuse_transfers(self, test_day):
        report = DeviceSimulator().replay(
            test_day, data_off_windows=[(0.0, 86000.0)]
        )
        assert report.transfers < len(test_day.activities)
        assert len(report.refused) > 0

    def test_invalid_off_window(self, test_day):
        with pytest.raises(ValueError, match="window"):
            DeviceSimulator().replay(test_day, data_off_windows=[(100.0, 50.0)])


class TestMonitorToMinerLoop:
    def test_replayed_store_supports_mining(self, test_day):
        """Close the Fig. 6 loop: monitor a replay, mine the store."""
        report = DeviceSimulator().replay(test_day)
        store = report.store
        assert store.n_days() == 1
        probs = store.screen_use_matrix().mean(axis=0)
        assert probs.max() <= 1.0
        assert (probs > 0).any()
        # Special apps can be derived from the monitored records too.
        from repro.habits import SpecialAppRegistry

        registry = SpecialAppRegistry.from_store(store)
        assert registry.special  # at least one app used with traffic
