"""Tests for the DES kernel."""

from __future__ import annotations

import pytest

from repro.device import SimulationError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule_at(5.0, lambda: log.append("b"))
        sim.schedule_at(1.0, lambda: log.append("a"))
        sim.schedule_at(9.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        log = []
        for tag in ("first", "second", "third"):
            sim.schedule_at(3.0, lambda t=tag: log.append(t))
        sim.run()
        assert log == ["first", "second", "third"]

    def test_clock_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(7.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.5]
        assert sim.now == 7.5

    def test_schedule_in(self):
        sim = Simulator(start_time=10.0)
        seen = []
        sim.schedule_in(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [15.0]

    def test_rejects_past(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError, match="cannot schedule"):
            sim.schedule_at(5.0, lambda: None)

    def test_rejects_negative_delay(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_in(-1.0, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        log = []

        def chain():
            log.append(sim.now)
            if len(log) < 3:
                sim.schedule_in(1.0, chain)

        sim.schedule_at(0.0, chain)
        sim.run()
        assert log == [0.0, 1.0, 2.0]


class TestRunUntil:
    def test_run_until_stops(self):
        sim = Simulator()
        log = []
        sim.schedule_at(5.0, lambda: log.append(5))
        sim.schedule_at(50.0, lambda: log.append(50))
        sim.run(until=10.0)
        assert log == [5]
        assert sim.now == 10.0

    def test_events_at_until_run(self):
        sim = Simulator()
        log = []
        sim.schedule_at(10.0, lambda: log.append(10))
        sim.run(until=10.0)
        assert log == [10]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_infinite_until_object_identity(self):
        # Regression: `until is not math.inf` let a distinct inf object
        # (e.g. float("inf") from parsed input) set the clock to infinity.
        sim = Simulator()
        sim.schedule_at(5.0, lambda: None)
        sim.run(until=float("inf"))
        assert sim.now == 5.0

    def test_infinite_until_empty_queue(self):
        sim = Simulator(start_time=2.0)
        sim.run(until=float("inf"))
        assert sim.now == 2.0


class TestCancellation:
    def test_cancel_pending(self):
        sim = Simulator()
        log = []
        handle = sim.schedule_at(5.0, lambda: log.append("x"))
        assert sim.cancel(handle)
        sim.run()
        assert log == []

    def test_double_cancel(self):
        sim = Simulator()
        handle = sim.schedule_at(5.0, lambda: None)
        assert sim.cancel(handle)
        assert not sim.cancel(handle)

    def test_cancel_after_run(self):
        sim = Simulator()
        handle = sim.schedule_at(5.0, lambda: None)
        sim.run()
        assert not sim.cancel(handle)

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        handle = sim.schedule_at(5.0, lambda: None)
        sim.schedule_at(6.0, lambda: None)
        sim.cancel(handle)
        assert sim.pending == 1


class TestPeriodic:
    def test_periodic_fires_repeatedly(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(10.0, lambda: ticks.append(sim.now), until=45.0)
        sim.run()
        assert ticks == [10.0, 20.0, 30.0, 40.0]

    def test_periodic_custom_start(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(10.0, lambda: ticks.append(sim.now), start_in=3.0, until=25.0)
        sim.run()
        assert ticks == [3.0, 13.0, 23.0]

    def test_cancel_periodic_chain(self):
        sim = Simulator()
        ticks = []
        handle = sim.schedule_every(10.0, lambda: ticks.append(sim.now))
        sim.schedule_at(35.0, lambda: sim.cancel(handle))
        sim.run(until=100.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_rejects_bad_interval(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_every(0.0, lambda: None)

    def test_events_run_counter(self):
        sim = Simulator()
        sim.schedule_every(1.0, lambda: None, until=5.5)
        sim.run()
        assert sim.events_run == 5
