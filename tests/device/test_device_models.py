"""Tests for screen model, network interface, and monitoring component."""

from __future__ import annotations

import pytest

from repro.device import (
    MonitoringComponent,
    NetworkInterface,
    ScreenModel,
    Simulator,
)
from repro.radio import TruncatedTail, wcdma_model
from repro.traces import AppUsage, NetworkActivity, ScreenSession

MODEL = wcdma_model()


def _sessions():
    return [ScreenSession(100.0, 160.0), ScreenSession(500.0, 520.0)]


class TestScreenModel:
    def test_transitions_fire_in_order(self):
        sim = Simulator()
        screen = ScreenModel(sim, _sessions())
        log = []
        screen.subscribe(lambda t, on: log.append((t, on)))
        sim.run()
        assert log == [(100.0, True), (160.0, False), (500.0, True), (520.0, False)]
        assert screen.transitions == 4

    def test_is_on_tracks_state(self):
        sim = Simulator()
        screen = ScreenModel(sim, _sessions())
        states = []
        sim.schedule_at(130.0, lambda: states.append(screen.is_on))
        sim.schedule_at(300.0, lambda: states.append(screen.is_on))
        sim.run()
        assert states == [True, False]

    def test_unsubscribe(self):
        sim = Simulator()
        screen = ScreenModel(sim, _sessions())
        log = []
        listener = lambda t, on: log.append(t)  # noqa: E731
        screen.subscribe(listener)
        screen.unsubscribe(listener)
        sim.run()
        assert log == []


class TestNetworkInterface:
    def _act(self, t=100.0):
        return NetworkActivity(t, "app", 1000.0, 100.0, 5.0, True)

    def test_transfer_recorded(self):
        sim = Simulator()
        iface = NetworkInterface(sim, MODEL)
        act = self._act()
        sim.schedule_at(100.0, lambda: iface.request_transfer(act))
        sim.run()
        assert iface.windows() == [(100.0, 105.0)]
        assert iface.total_payload_bytes == 1100.0

    def test_disabled_interface_refuses(self):
        sim = Simulator()
        iface = NetworkInterface(sim, MODEL)
        act = self._act()
        sim.schedule_at(50.0, iface.disable)
        sim.schedule_at(100.0, lambda: iface.request_transfer(act))
        sim.run()
        assert iface.transfers == []
        assert iface.refused == [(100.0, "app")]

    def test_enable_disable_events_logged(self):
        sim = Simulator()
        iface = NetworkInterface(sim, MODEL)
        sim.schedule_at(10.0, iface.disable)
        sim.schedule_at(20.0, iface.enable)
        sim.schedule_at(30.0, iface.enable)  # no-op: already enabled
        sim.run()
        assert iface.switch_events == [(10.0, False), (20.0, True)]

    def test_energy_through_rrc(self):
        sim = Simulator()
        iface = NetworkInterface(sim, MODEL)
        act = self._act()
        sim.schedule_at(100.0, lambda: iface.request_transfer(act))
        sim.run()
        report = iface.energy()
        assert report.energy_j == pytest.approx(MODEL.isolated_transfer_energy_j(5.0))
        cut = iface.energy(TruncatedTail(0.0))
        assert cut.energy_j < report.energy_j


class TestMonitoringComponent:
    def _device(self, sessions=None):
        sim = Simulator()
        screen = ScreenModel(sim, sessions or _sessions())
        iface = NetworkInterface(sim, MODEL)
        monitor = MonitoringComponent(sim, screen, iface)
        return sim, screen, iface, monitor

    def test_records_sessions_via_event_trigger(self):
        sim, _, _, monitor = self._device()
        sim.run(until=600.0)
        store = monitor.finalize()
        recorded = [(s.start, s.end) for s in store.screen_sessions]
        assert recorded == [(100.0, 160.0), (500.0, 520.0)]

    def test_open_session_closed_by_finalize(self):
        sim, _, _, monitor = self._device([ScreenSession(100.0, 1000.0)])
        sim.run(until=500.0)
        store = monitor.finalize(at=500.0)
        assert store.screen_sessions[0].end == 500.0

    def test_app_and_network_records(self):
        sim, _, iface, monitor = self._device()
        usage = AppUsage(110.0, "browser", 20.0)
        act = NetworkActivity(115.0, "browser", 2000.0, 200.0, 5.0, True)
        sim.schedule_at(110.0, lambda: monitor.record_app_launch(usage))

        def transfer():
            if iface.request_transfer(act):
                monitor.record_network_activity(act)

        sim.schedule_at(115.0, transfer)
        sim.run(until=600.0)
        store = monitor.finalize()
        assert len(store.usages) == 1
        assert len(store.activities) == 1

    def test_sampling_rate_follows_screen(self):
        # 60 s of screen-on at 1 Hz ≈ 60 samples; the same simulated span
        # screen-off at 1/30 Hz would give only 2.
        sim, _, _, monitor = self._device([ScreenSession(0.0, 60.0)])
        sim.run(until=60.0)
        on_samples = monitor.samples_taken
        assert on_samples >= 55

        sim2 = Simulator()
        screen2 = ScreenModel(sim2, [])
        iface2 = NetworkInterface(sim2, MODEL)
        monitor2 = MonitoringComponent(sim2, screen2, iface2)
        sim2.run(until=60.0)
        assert monitor2.samples_taken <= 2
