"""Shared fixtures: small deterministic traces and radio models.

Expensive artifacts (multi-day cohorts, trained middleware) are
session-scoped; anything a test mutates gets a fresh function-scoped
copy.
"""

from __future__ import annotations

import pytest

from repro._util import DAY
from repro.radio import lte_model, wcdma_model
from repro.traces import (
    AppUsage,
    NetworkActivity,
    ScreenSession,
    Trace,
    generate_cohort,
    generate_volunteers,
)
from repro.evaluation import split_history


@pytest.fixture(scope="session")
def wcdma():
    """The default WCDMA power model."""
    return wcdma_model()


@pytest.fixture(scope="session")
def lte():
    """The LTE power model."""
    return lte_model()


@pytest.fixture(scope="session")
def cohort():
    """The 8-user, 7-day profiling cohort (shorter than the paper's 21
    days to keep the suite fast; calibration tests use their own)."""
    return generate_cohort(7, seed=2014)


@pytest.fixture(scope="session")
def volunteers():
    """The 3 evaluation volunteers over 14 days."""
    return generate_volunteers(14, seed=43)


@pytest.fixture(scope="session")
def volunteer(volunteers):
    """One volunteer trace."""
    return volunteers[0]


@pytest.fixture(scope="session")
def history_and_days(volunteer):
    """A 10-day history prefix and the held-out single days."""
    return split_history(volunteer, 10)


@pytest.fixture(scope="session")
def history(history_and_days):
    """The training prefix."""
    return history_and_days[0]


@pytest.fixture(scope="session")
def test_day(history_and_days):
    """One held-out single-day trace."""
    return history_and_days[1][0]


@pytest.fixture
def tiny_trace():
    """A hand-built 1-day trace with known structure.

    Two sessions (100-130 s and 7200-7260 s), one foreground transfer in
    each, and two screen-off background syncs at 3600 s and 50000 s.
    """
    sessions = [ScreenSession(100.0, 130.0), ScreenSession(7200.0, 7260.0)]
    usages = [
        AppUsage(100.0, "com.tencent.mm", 30.0),
        AppUsage(7200.0, "browser", 60.0),
    ]
    activities = [
        NetworkActivity(105.0, "com.tencent.mm", 9000.0, 1000.0, 10.0, True),
        NetworkActivity(3600.0, "com.android.email", 2000.0, 500.0, 5.0, False),
        NetworkActivity(7210.0, "browser", 40000.0, 4000.0, 20.0, True),
        NetworkActivity(50000.0, "com.facebook.katana", 1500.0, 300.0, 4.0, False),
    ]
    return Trace(
        user_id="tiny",
        n_days=1,
        start_weekday=0,
        screen_sessions=sessions,
        usages=usages,
        activities=activities,
    )


@pytest.fixture
def two_day_trace():
    """A 2-day trace (Mon+Sat boundary) for day-type splitting tests."""
    sessions = [
        ScreenSession(3600.0, 3630.0),
        ScreenSession(DAY + 7200.0, DAY + 7230.0),
    ]
    usages = [
        AppUsage(3600.0, "com.tencent.mm", 30.0),
        AppUsage(DAY + 7200.0, "browser", 30.0),
    ]
    activities = [
        NetworkActivity(3605.0, "com.tencent.mm", 1000.0, 100.0, 5.0, True),
        NetworkActivity(40000.0, "com.android.email", 800.0, 80.0, 4.0, False),
        NetworkActivity(DAY + 7205.0, "browser", 1200.0, 120.0, 6.0, True),
    ]
    return Trace(
        user_id="twoday",
        n_days=2,
        start_weekday=4,  # Friday, so day 1 is Saturday
        screen_sessions=sessions,
        usages=usages,
        activities=activities,
    )
