"""The quarantine state machine: trigger, hold, hysteresis, no-op apply."""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.monitor.detectors import DaySignal, MonitorConfig
from repro.monitor.feedback import UserMonitor

#: DCH-stuck is the only default detector with no warm-up period, so a
#: crafted share drives the machine deterministically from day 0.
CONFIG = MonitorConfig(quarantine_days=3, release_clean_days=2)


def sig(day, *, stuck=False):
    radio = 2000.0
    return DaySignal(
        user_id="u0",
        day=day,
        energy_j=400.0,
        radio_on_s=radio,
        transfer_s=radio * (0.99 if stuck else 0.7),
        naive_energy_j=900.0,
        screen_on_s=3000.0,
        events=40,
        drift_alerts_total=0,
        degraded=False,
    )


def engine(day=10):
    return SimpleNamespace(day=day, quarantined_until=0, adoption_frozen_until=0)


class TestHysteresis:
    def test_trigger_hold_release(self):
        m = UserMonitor("u0", CONFIG)
        assert m.feed(None, [sig(0)]) == []
        assert not m.active

        alerts = m.feed(None, [sig(1, stuck=True)])
        assert [a.kind for a in alerts] == ["dch_stuck"]
        assert m.active and m.quarantines == 1

        # Two clean days: served < quarantine_days, still held.
        m.feed(None, [sig(2), sig(3)])
        assert m.active and m.served == 2
        # Third clean day satisfies both served and clean bounds.
        m.feed(None, [sig(4)])
        assert not m.active

    def test_alert_during_probation_rearms(self):
        m = UserMonitor("u0", CONFIG)
        m.feed(None, [sig(0, stuck=True), sig(1), sig(2)])
        assert m.active and m.served == 2
        m.feed(None, [sig(3, stuck=True)])  # re-offend on the last day
        assert m.served == 0 and m.clean == 0
        assert m.quarantines == 1  # one continuous hold, not a new one
        m.feed(None, [sig(4), sig(5)])
        assert m.active  # the sentence restarted
        m.feed(None, [sig(6)])
        assert not m.active

    def test_release_needs_clean_run_not_just_served_days(self):
        config = MonitorConfig(quarantine_days=1, release_clean_days=3)
        m = UserMonitor("u0", config)
        m.feed(None, [sig(0, stuck=True)])
        m.feed(None, [sig(1), sig(2)])
        assert m.active  # served >= 1 but clean run is only 2
        m.feed(None, [sig(3)])
        assert not m.active


class TestApply:
    def test_quarantine_writes_the_window_while_active(self):
        m = UserMonitor("u0", CONFIG)
        m.feed(None, [sig(0, stuck=True)])
        eng = engine(day=12)
        m.apply(eng)
        assert eng.quarantined_until == 12 + 1 + CONFIG.quarantine_days
        assert eng.adoption_frozen_until == 0

    def test_quiet_monitor_writes_zero(self):
        # The byte-equality invariant: an inactive monitor writes the
        # value the engine already holds.
        m = UserMonitor("u0", CONFIG)
        m.feed(None, [sig(0)])
        eng = engine()
        m.apply(eng)
        assert eng.quarantined_until == 0
        assert eng.adoption_frozen_until == 0

    def test_freeze_action_targets_adoption(self):
        m = UserMonitor("u0", MonitorConfig(action="freeze"))
        m.feed(None, [sig(0, stuck=True)])
        eng = engine(day=7)
        m.apply(eng)
        assert eng.adoption_frozen_until == 7 + 1 + 3
        assert eng.quarantined_until == 0

    def test_none_action_never_touches_the_engine(self):
        m = UserMonitor("u0", MonitorConfig(action="none"))
        m.feed(None, [sig(0, stuck=True)])
        eng = SimpleNamespace(day=5, quarantined_until=-1, adoption_frozen_until=-1)
        m.apply(eng)
        assert eng.quarantined_until == -1
        assert eng.adoption_frozen_until == -1

    def test_feed_applies_feedback_when_engine_is_passed(self):
        m = UserMonitor("u0", CONFIG)
        eng = engine(day=3)
        m.feed(eng, [sig(0, stuck=True)])
        assert eng.quarantined_until == 3 + 1 + CONFIG.quarantine_days


class TestCheckpoint:
    def test_roundtrip_mid_hold_resumes_identically(self):
        stream = [sig(0), sig(1, stuck=True), sig(2), sig(3, stuck=True)] + [
            sig(d) for d in range(4, 10)
        ]
        straight = UserMonitor("u0", CONFIG)
        expected = [straight.feed(None, [s]) for s in stream]

        m = UserMonitor("u0", CONFIG)
        got = [m.feed(None, [s]) for s in stream[:3]]
        state = json.loads(json.dumps(m.state_dict()))
        resumed = UserMonitor.load_state(state, user_id="u0", config=CONFIG)
        assert resumed.active and resumed.served == 1
        got += [resumed.feed(None, [s]) for s in stream[3:]]

        assert got == expected
        assert json.dumps(resumed.state_dict(), sort_keys=True) == json.dumps(
            straight.state_dict(), sort_keys=True
        )
        assert resumed.alerts_total == straight.alerts_total == 2

    def test_rejects_unknown_format(self):
        state = UserMonitor("u0").state_dict()
        state["format"] = 0
        with pytest.raises(ValueError, match="format"):
            UserMonitor.load_state(state, user_id="u0")
