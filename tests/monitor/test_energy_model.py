"""Online least squares: recovery, gating, bit-exact state round-trips."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitor.energy_model import (
    DayTypeMeanPredictor,
    FEATURES,
    OnlineEnergyModel,
    TrailingMeanPredictor,
)

#: Ground-truth coefficients for the recovery tests, in FEATURES order.
TRUE_BETA = [12.0, 0.08, 1.7, 0.05]


def row(day):
    """A full-rank sequence of daily feature rows (no two collinear)."""
    return [
        1.0,
        1000.0 + 311.0 * day + 17.0 * (day % 3) ** 2,
        float(10 + 7 * (day % 5)),
        900.0 + 101.0 * ((day * day) % 11),
    ]


def energy(features):
    return sum(b * f for b, f in zip(TRUE_BETA, features))


class TestOnlineEnergyModel:
    def test_predicts_none_before_min_days(self):
        model = OnlineEnergyModel(min_days=3)
        for day in range(2):
            assert model.predict(row(day)) is None
            model.observe(row(day), energy(row(day)))
        assert model.coefficients() is None

    def test_recovers_exact_linear_relation(self):
        model = OnlineEnergyModel()
        for day in range(8):
            model.observe(row(day), energy(row(day)))
        # Probe just past the training range: the scaled ridge biases
        # coefficients by O(1e-8 * scale), visible only far off-range.
        probe = row(9)
        assert model.predict(probe) == pytest.approx(energy(probe), rel=1e-2)

    def test_near_collinear_design_still_solves(self):
        # screen/events/radio all linear in the day index: rank 2.  The
        # scaled ridge keeps the system solvable and on-manifold
        # predictions accurate.
        model = OnlineEnergyModel()
        for day in range(6):
            f = [1.0, 100.0 * day, float(day), 50.0 * day]
            model.observe(f, 5.0 + 2.0 * day)
        got = model.predict([1.0, 300.0, 3.0, 150.0])
        assert got == pytest.approx(11.0, rel=1e-3)

    def test_rejects_wrong_feature_count(self):
        with pytest.raises(ValueError, match="features"):
            OnlineEnergyModel().observe([1.0, 2.0], 10.0)
        with pytest.raises(ValueError):
            OnlineEnergyModel(min_days=0)

    def test_state_roundtrip_is_bit_exact(self):
        model = OnlineEnergyModel()
        for day in range(7):
            model.observe(row(day), energy(row(day)) + 0.1 * day)
        state = json.loads(json.dumps(model.state_dict()))
        restored = OnlineEnergyModel.from_state(state)
        probe = row(42)
        # Not approx: the accumulators cross JSON bit-exactly, so the
        # deterministic solver returns the identical float.
        assert restored.predict(probe) == model.predict(probe)
        assert restored.state_dict() == model.state_dict()

    def test_roundtrip_then_resume_matches_straight_run(self):
        straight = OnlineEnergyModel()
        resumed = OnlineEnergyModel()
        for day in range(4):
            straight.observe(row(day), energy(row(day)))
            resumed.observe(row(day), energy(row(day)))
        resumed = OnlineEnergyModel.from_state(
            json.loads(json.dumps(resumed.state_dict()))
        )
        for day in range(4, 9):
            straight.observe(row(day), energy(row(day)))
            resumed.observe(row(day), energy(row(day)))
        assert resumed.predict(row(9)) == straight.predict(row(9))

    def test_rejects_unknown_format(self):
        state = OnlineEnergyModel().state_dict()
        state["format"] = 2
        with pytest.raises(ValueError, match="format"):
            OnlineEnergyModel.from_state(state)

    @given(
        energies=st.lists(
            st.floats(min_value=0.0, max_value=5000.0, allow_nan=False),
            min_size=3,
            max_size=15,
        ),
        split=st.integers(min_value=0, max_value=15),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, energies, split):
        split = min(split, len(energies))
        straight = OnlineEnergyModel()
        other = OnlineEnergyModel()
        for day, e in enumerate(energies[:split]):
            straight.observe(row(day), e)
            other.observe(row(day), e)
        other = OnlineEnergyModel.from_state(
            json.loads(json.dumps(other.state_dict()))
        )
        for day, e in enumerate(energies[split:], start=split):
            straight.observe(row(day), e)
            other.observe(row(day), e)
        probe = row(99)
        assert other.predict(probe) == straight.predict(probe)


class TestReferencePredictors:
    def test_trailing_mean(self):
        p = TrailingMeanPredictor()
        assert p.predict() is None
        p.observe(100.0)
        p.observe(300.0)
        assert p.predict() == 200.0

    def test_daytype_splits_weekday_weekend(self):
        p = DayTypeMeanPredictor()
        p.observe(0, 100.0)  # Monday
        p.observe(5, 900.0)  # Saturday
        assert p.predict(1) == 100.0
        assert p.predict(6) == 900.0
        p.observe(2, 300.0)
        assert p.predict(4) == 200.0

    def test_daytype_none_until_that_type_seen(self):
        p = DayTypeMeanPredictor()
        p.observe(0, 100.0)
        assert p.predict(6) is None

    def test_feature_order_is_the_documented_one(self):
        assert FEATURES == ("bias", "screen_on_s", "events", "radio_on_s")
