"""``python -m repro monitor`` smoke: contracts, sinks, formatting."""

from __future__ import annotations

import json
import os

import pytest

from repro.evaluation.reporting import format_monitor, results_to_json
from repro.monitor.detectors import Alert
from repro.monitor.experiment import (
    ALERTS_OUT_ENV,
    EXPECTED_DETECTOR,
    monitor_experiment,
)


@pytest.fixture(scope="module")
def result(tmp_path_factory):
    """One quick-shape run with the JSONL tee enabled (the CI artifact)."""
    out = tmp_path_factory.mktemp("alerts") / "alerts.jsonl"
    previous = os.environ.get(ALERTS_OUT_ENV)
    os.environ[ALERTS_OUT_ENV] = str(out)
    try:
        return monitor_experiment(seed=2014, n_users=8, n_days=14, train_days=7)
    finally:
        if previous is None:
            del os.environ[ALERTS_OUT_ENV]
        else:
            os.environ[ALERTS_OUT_ENV] = previous


class TestContracts:
    def test_cohort_split(self, result):
        assert result.n_users == 8
        assert result.anomalous_users == 2  # every 4th user
        assert result.clean_users == 6
        assert set(result.injected.values()) == {"runaway", "dch"}
        assert result.onset_day == 7 + 4  # train_days + runaway_min_days

    def test_quiet_monitor_contract(self, result):
        assert result.false_alert_users == 0
        assert result.clean_byte_equal
        assert result.precision == 1.0

    def test_matching_detector_contract(self, result):
        assert result.detected_users == result.anomalous_users
        assert result.kind_matched_users == result.anomalous_users
        assert result.recall == 1.0 and result.kind_recall == 1.0
        for kind in set(result.injected.values()):
            assert result.alerts_by_kind.get(EXPECTED_DETECTOR[kind], 0) > 0

    def test_feedback_contract(self, result):
        assert result.quarantine_effective_users == result.anomalous_users
        assert result.degraded_days_monitored > result.degraded_days_clean

    def test_energy_model_study_ran(self, result):
        assert result.model_days > 0
        assert result.model_mae_j > 0.0
        assert result.trailing_mae_j > 0.0
        assert result.daytype_mae_j > 0.0

    def test_alert_jsonl_tee(self, result):
        assert result.alerts_path is not None
        lines = [
            line
            for line in open(result.alerts_path, encoding="utf-8")
            if line.strip()
        ]
        assert len(lines) == result.alerts_total > 0
        kinds = {Alert.from_dict(json.loads(line)).kind for line in lines}
        assert kinds == set(result.alerts_by_kind)
        assert result.sink_errors == 0


class TestValidation:
    def test_onset_must_leave_history_and_horizon(self):
        with pytest.raises(ValueError, match="onset_day"):
            monitor_experiment(n_users=4, n_days=10, train_days=7, onset_day=7)
        with pytest.raises(ValueError, match="onset_day"):
            monitor_experiment(n_users=4, n_days=10, train_days=7, onset_day=10)

    def test_anomalous_every_bound(self):
        with pytest.raises(ValueError, match="anomalous_every"):
            monitor_experiment(n_users=4, n_days=10, anomalous_every=1)


class TestReporting:
    def test_formatter_renders_the_contracts(self, result):
        text = format_monitor(result)
        assert "Fleet monitoring" in text
        assert "quiet-monitor contract" in text
        assert "recall" in text
        assert "alerts.jsonl" in text  # the tee path is surfaced

    def test_json_export_carries_headlines(self, result):
        export = results_to_json({"monitor": result})
        headlines = export["experiments"]["monitor"]["headlines"]
        assert headlines, "monitor experiment should export headline rows"
        assert all(h["paper"] is None for h in headlines)
