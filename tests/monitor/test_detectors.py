"""Detector verdicts, self-excluding baselines, checkpoint round-trips."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitor.detectors import (
    Alert,
    DaySignal,
    DchStuckDetector,
    DetectorBank,
    DriftEscalationDetector,
    MonitorConfig,
    ResidualEnergyDetector,
    RunawayEnergyDetector,
    SavingsCollapseDetector,
    SEVERITY_CRITICAL,
    SEVERITY_WARNING,
)


def sig(
    day,
    *,
    energy=400.0,
    radio=2000.0,
    transfer=1200.0,
    naive=900.0,
    screen=3000.0,
    events=40,
    drift=0,
    degraded=False,
):
    return DaySignal(
        user_id="u0",
        day=day,
        energy_j=energy,
        radio_on_s=radio,
        transfer_s=transfer,
        naive_energy_j=naive,
        screen_on_s=screen,
        events=events,
        drift_alerts_total=drift,
        degraded=degraded,
    )


class TestRecords:
    def test_signal_roundtrips_through_json(self):
        s = sig(3, energy=123.456789, radio=0.1 + 0.2)  # non-representable floats
        doc = json.loads(json.dumps(s.as_dict()))
        assert DaySignal.from_dict(doc) == s

    def test_alert_roundtrips_through_json(self):
        a = Alert(
            user_id="u1",
            day=9,
            kind="runaway_energy",
            severity=SEVERITY_CRITICAL,
            value=7.25,
            threshold=6.0,
            message="boom",
        )
        assert Alert.from_dict(json.loads(json.dumps(a.as_dict()))) == a

    def test_alert_message_defaults_empty(self):
        doc = Alert(
            user_id="u", day=0, kind="k", severity=SEVERITY_WARNING,
            value=1.0, threshold=0.5,
        ).as_dict()
        del doc["message"]
        assert Alert.from_dict(doc).message == ""


class TestMonitorConfig:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"action": "explode"},
            {"runaway_z": 0.0},
            {"residual_z": -1.0},
            {"dch_share_bound": 0.0},
            {"dch_share_bound": 1.5},
            {"collapse_window_days": 0},
            {"collapse_drop": 0.0},
            {"drift_run_days": 0},
            {"quarantine_days": 0},
            {"release_clean_days": -1},
        ],
    )
    def test_rejects_bad_values(self, overrides):
        with pytest.raises(ValueError):
            MonitorConfig(**overrides)

    def test_defaults_validate(self):
        assert MonitorConfig().action == "quarantine"


class TestRunawayEnergy:
    def test_quiet_before_min_days(self):
        det = RunawayEnergyDetector(z_threshold=6.0, min_days=4)
        for day in range(3):
            assert det.feed(sig(day, energy=400.0)) is None
        # Day 3 spikes but only 3 history days are folded: still unarmed.
        assert det.feed(sig(3, energy=50_000.0)) is None

    def test_fires_on_spike_and_excludes_it(self):
        det = RunawayEnergyDetector(z_threshold=6.0, min_days=4, min_std_j=25.0)
        for day in range(6):
            det.feed(sig(day, energy=400.0 + day))  # tiny slope, std floor rules
        first = det.feed(sig(6, energy=5_000.0))
        assert first is not None and first.kind == "runaway_energy"
        assert first.severity == SEVERITY_CRITICAL  # z far past 2x threshold
        # Self-exclusion: the alerted day never teaches the baseline, so
        # the same spike keeps firing with an unchanged mean.
        second = det.feed(sig(7, energy=5_000.0))
        assert second is not None
        assert second.value == pytest.approx(first.value)
        assert det.fired == 2

    def test_std_floor_suppresses_noise_alerts(self):
        det = RunawayEnergyDetector(z_threshold=6.0, min_days=4, min_std_j=25.0)
        for day in range(8):
            det.feed(sig(day, energy=400.0))  # zero variance history
        # +100 J is 4 sigma against the 25 J floor: below threshold.
        assert det.feed(sig(8, energy=500.0)) is None


class TestDchStuck:
    def test_needs_enough_radio_time(self):
        det = DchStuckDetector(share_bound=0.9, min_radio_s=900.0)
        assert det.feed(sig(0, radio=800.0, transfer=800.0)) is None

    def test_fires_above_bound(self):
        det = DchStuckDetector(share_bound=0.9, min_radio_s=900.0)
        assert det.feed(sig(0, radio=2000.0, transfer=1700.0)) is None
        alert = det.feed(sig(1, radio=2000.0, transfer=1960.0))
        assert alert is not None and alert.kind == "dch_stuck"
        assert alert.value == pytest.approx(0.98)
        assert alert.severity == SEVERITY_CRITICAL  # past 0.95 hard point
        assert det.fired == 1


class TestSavingsCollapse:
    def test_fires_when_saving_drops(self):
        det = SavingsCollapseDetector(window_days=3, drop=0.2, min_naive_j=50.0)
        for day in range(4):
            assert det.feed(sig(day, energy=400.0, naive=1000.0)) is None
        alert = det.feed(sig(4, energy=950.0, naive=1000.0))
        assert alert is not None and alert.kind == "savings_collapse"
        # The collapsed day stays out of the window: it keeps firing.
        assert det.feed(sig(5, energy=950.0, naive=1000.0)) is not None

    def test_small_naive_days_are_ignored(self):
        det = SavingsCollapseDetector(window_days=1, drop=0.1, min_naive_j=50.0)
        det.feed(sig(0, energy=10.0, naive=100.0))
        assert det.feed(sig(1, energy=200.0, naive=40.0)) is None


class TestDriftEscalation:
    def test_streak_of_alerting_days_fires(self):
        det = DriftEscalationDetector(run_days=3)
        total = 0
        for day in range(2):
            total += 1
            assert det.feed(sig(day, drift=total)) is None
        total += 1
        alert = det.feed(sig(2, drift=total))
        assert alert is not None and alert.kind == "drift_escalation"
        assert alert.value == 3.0

    def test_flat_day_resets_the_run(self):
        det = DriftEscalationDetector(run_days=3)
        det.feed(sig(0, drift=1))
        det.feed(sig(1, drift=2))
        det.feed(sig(2, drift=2))  # counter did not move
        assert det.feed(sig(3, drift=3)) is None  # streak restarted at 1


class TestResidualEnergy:
    def test_fires_on_overconsumption_vs_learned_model(self):
        det = ResidualEnergyDetector(z_threshold=8.0, min_days=4, min_std_j=25.0)
        # Energy is an exact linear function of usage: residuals ~0.
        for day in range(8):
            s = sig(
                day,
                screen=1000.0 + 137.0 * day,
                events=20 + 3 * day,
                radio=1500.0 + 61.0 * day,
            )
            s = DaySignal(
                **{**s.as_dict(), "energy_j": 10.0 + 0.1 * s.screen_on_s
                   + 2.0 * s.events + 0.05 * s.radio_on_s}
            )
            assert det.feed(s) is None
        spike = sig(8, screen=2000.0, events=44, radio=2000.0, energy=50_000.0)
        alert = det.feed(spike)
        assert alert is not None and alert.kind == "energy_residual"
        # Self-exclusion: residual stats unchanged, so it fires again.
        assert det.feed(DaySignal(**{**spike.as_dict(), "day": 9})) is not None


# ----------------------------------------------------------------------
# checkpoint round-trips
# ----------------------------------------------------------------------

#: Twitchy thresholds so random streams exercise the firing paths too.
TWITCHY = MonitorConfig(
    runaway_z=0.5,
    runaway_min_days=2,
    runaway_min_std_j=1.0,
    dch_share_bound=0.5,
    dch_min_radio_s=100.0,
    collapse_window_days=2,
    collapse_drop=0.05,
    collapse_min_naive_j=10.0,
    drift_run_days=2,
    residual_z=0.5,
    residual_min_days=2,
    residual_min_std_j=1.0,
)

finite = st.floats(min_value=0.0, max_value=5000.0, allow_nan=False)


@st.composite
def signal_streams(draw):
    n = draw(st.integers(min_value=2, max_value=20))
    out, drift_total = [], 0
    for day in range(n):
        drift_total += draw(st.integers(0, 1))
        radio = draw(finite)
        out.append(
            DaySignal(
                user_id="hyp",
                day=day,
                energy_j=draw(finite),
                radio_on_s=radio,
                transfer_s=radio * draw(st.floats(0.0, 1.0)),
                naive_energy_j=draw(finite),
                screen_on_s=draw(finite),
                events=draw(st.integers(0, 500)),
                drift_alerts_total=drift_total,
                degraded=False,
            )
        )
    return out


class TestCheckpointRoundTrip:
    @given(stream=signal_streams(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_bank_resumes_bit_identically_mid_stream(self, stream, data):
        split = data.draw(st.integers(0, len(stream)))
        straight = DetectorBank("hyp", TWITCHY)
        straight_alerts = [a for s in stream for a in straight.feed(s)]

        prefix = DetectorBank("hyp", TWITCHY)
        prefix_alerts = [a for s in stream[:split] for a in prefix.feed(s)]
        # The checkpoint crosses a real JSON boundary, like the WAL does.
        state = json.loads(json.dumps(prefix.state_dict()))
        resumed = DetectorBank.load_state(state, user_id="hyp", config=TWITCHY)
        resumed_alerts = [a for s in stream[split:] for a in resumed.feed(s)]

        assert prefix_alerts + resumed_alerts == straight_alerts
        assert json.dumps(resumed.state_dict(), sort_keys=True) == json.dumps(
            straight.state_dict(), sort_keys=True
        )

    def test_bank_rejects_unknown_state_format(self):
        state = DetectorBank("u", MonitorConfig()).state_dict()
        state["format"] = 99
        with pytest.raises(ValueError, match="format"):
            DetectorBank.load_state(state, user_id="u", config=MonitorConfig())

    @pytest.mark.parametrize(
        "make",
        [
            lambda: RunawayEnergyDetector(z_threshold=0.5, min_days=2, min_std_j=1.0),
            lambda: DchStuckDetector(share_bound=0.5, min_radio_s=100.0),
            lambda: SavingsCollapseDetector(window_days=2, drop=0.05, min_naive_j=10.0),
            lambda: DriftEscalationDetector(run_days=2),
            lambda: ResidualEnergyDetector(z_threshold=0.5, min_days=2, min_std_j=1.0),
        ],
    )
    def test_each_detector_roundtrips_alone(self, make):
        stream = [
            sig(day, energy=300.0 + 90.0 * (day % 3), transfer=1960.0, drift=day)
            for day in range(10)
        ]
        straight, resumed = make(), make()
        expected = [straight.feed(s) for s in stream]
        got = [resumed.feed(s) for s in stream[:5]]
        resumed.load_state(json.loads(json.dumps(resumed.state_dict())))
        got += [resumed.feed(s) for s in stream[5:]]
        assert got == expected
