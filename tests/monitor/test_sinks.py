"""Alert sinks: atomic publishing, bounded buffers, hub isolation."""

from __future__ import annotations

import csv
import json

import pytest

from repro.monitor.detectors import Alert, SEVERITY_WARNING
from repro.monitor.sinks import (
    CallbackSink,
    CsvAlertSink,
    JsonlAlertSink,
    MonitorHub,
    RingAlertSink,
)
from repro.telemetry import metrics


def alert(day, kind="runaway_energy", user="u0"):
    return Alert(
        user_id=user,
        day=day,
        kind=kind,
        severity=SEVERITY_WARNING,
        value=7.0,
        threshold=6.0,
        message=f"day {day}",
    )


class _Boom:
    """A sink whose emit and close both fail (the broken webhook)."""

    def __init__(self) -> None:
        self.count = 0

    def emit(self, a):
        raise RuntimeError("webhook down")

    def close(self):
        raise RuntimeError("webhook still down")


class TestJsonlSink:
    def test_publishes_atomically_on_close(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        sink = JsonlAlertSink(path)
        alerts = [alert(d) for d in range(3)]
        for a in alerts:
            sink.emit(a)
        # Nothing is visible at the target until close renames it in.
        assert not path.exists()
        assert sink.close() == path
        lines = path.read_text(encoding="utf-8").splitlines()
        assert [Alert.from_dict(json.loads(line)) for line in lines] == alerts
        assert sink.count == 3

    def test_abort_discards_the_partial_log(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        sink = JsonlAlertSink(path)
        sink.emit(alert(0))
        sink.abort()
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []  # no .partial litter either

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "down" / "alerts.jsonl"
        sink = JsonlAlertSink(path)
        sink.emit(alert(0))
        sink.close()
        assert path.exists()


class TestCsvSink:
    def test_header_and_rows(self, tmp_path):
        path = tmp_path / "alerts.csv"
        sink = CsvAlertSink(path)
        sink.emit(alert(4, kind="dch_stuck"))
        sink.close()
        with open(path, newline="", encoding="utf-8") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 1
        assert rows[0]["kind"] == "dch_stuck"
        assert rows[0]["day"] == "4"
        assert float(rows[0]["value"]) == 7.0


class TestRingSink:
    def test_keeps_only_the_newest(self):
        ring = RingAlertSink(capacity=2)
        for day in range(5):
            ring.emit(alert(day))
        assert [a.day for a in ring.alerts()] == [3, 4]
        assert ring.count == 5  # total ever seen survives eviction

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingAlertSink(capacity=0)


class TestCallbackSink:
    def test_invokes_the_callable_per_alert(self):
        seen = []
        sink = CallbackSink(seen.append)
        sink.emit(alert(0))
        sink.emit(alert(1))
        assert [a.day for a in seen] == [0, 1]
        assert sink.count == 2


class TestHubIsolation:
    def test_raising_sink_does_not_starve_the_others(self):
        ring = RingAlertSink()
        boom = _Boom()
        tail = RingAlertSink()
        hub = MonitorHub([ring, boom, tail])
        before = metrics().snapshot()["counters"].get("monitor.sink_errors", 0)
        hub.publish_many([alert(0), alert(1, kind="dch_stuck")])
        # Both healthy sinks got both alerts, in order.
        assert [a.day for a in ring.alerts()] == [0, 1]
        assert [a.day for a in tail.alerts()] == [0, 1]
        assert hub.published == 2
        assert hub.by_kind == {"runaway_energy": 1, "dch_stuck": 1}
        assert hub.sink_errors == 2
        after = metrics().snapshot()["counters"].get("monitor.sink_errors", 0)
        assert after - before == 2

    def test_close_isolates_failures_too(self, tmp_path):
        jsonl = JsonlAlertSink(tmp_path / "alerts.jsonl")
        hub = MonitorHub([_Boom(), jsonl])
        hub.publish(alert(0))
        hub.close()
        # The healthy sink still published despite the raising close.
        assert (tmp_path / "alerts.jsonl").exists()
        assert hub.sink_errors == 2  # one emit failure + one close failure

    def test_add_sink_applies_to_future_alerts_only(self):
        hub = MonitorHub()
        hub.publish(alert(0))
        late = RingAlertSink()
        hub.add_sink(late)
        hub.publish(alert(1))
        assert [a.day for a in late.alerts()] == [1]
