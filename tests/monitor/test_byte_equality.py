"""The subsystem's cardinal invariant: a quiet monitor is a no-op.

Attaching monitoring to a clean cohort must leave summaries, decisions,
checkpoints and WAL bytes byte-identical to an unmonitored run — serial
and parallel, fleet and sharded."""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.netmaster import NetMasterConfig
from repro.monitor import MonitorConfig, MonitorHub, RingAlertSink
from repro.stream import (
    FleetConfig,
    FleetService,
    FleetUserSpec,
    ShardConfig,
    ShardedFleetService,
    fleet_specs,
    stream_one_user,
)
from repro.stream.fleet import stream_one_user_monitored

CONFIG = FleetConfig(
    train_days=10, netmaster=NetMasterConfig(enable_circuit_breaker=False)
)
MONITORED = replace(CONFIG, monitor=MonitorConfig())


def _specs(volunteers):
    return [
        FleetUserSpec(user_id=t.user_id, n_days=t.n_days, trace=t) for t in volunteers
    ]


def _shards(tmp_path, **kwargs):
    kwargs.setdefault("n_shards", 2)
    return ShardConfig(root=tmp_path / "shards", **kwargs)


class TestSingleUser:
    def test_monitored_stream_matches_plain_on_clean_trace(self, volunteer):
        plain = stream_one_user(volunteer, config=CONFIG)
        summary, alerts = stream_one_user_monitored(volunteer, config=MONITORED)
        assert alerts == []
        assert summary == plain

    def test_quiet_monitor_survives_checkpoint_cadence(self, volunteer):
        # The engine codec round-trips every day; if the quiet monitor
        # leaked any state into the checkpoint this would diverge.
        cadence = dict(train_days=10, checkpoint_every_days=1,
                       netmaster=CONFIG.netmaster)
        plain = stream_one_user(volunteer, config=FleetConfig(**cadence))
        summary, alerts = stream_one_user_monitored(
            volunteer,
            config=FleetConfig(monitor=MonitorConfig(), **cadence),
        )
        assert alerts == []
        assert summary == plain
        assert summary.checkpoints == plain.checkpoints > 0


class TestFleetService:
    def test_clean_cohort_is_byte_equal_serial_and_parallel(self, volunteers):
        base = FleetService(CONFIG).run(_specs(volunteers))
        hub = MonitorHub([RingAlertSink()])
        serial = FleetService(MONITORED).run(_specs(volunteers), monitor=hub)
        parallel = FleetService(MONITORED).run(_specs(volunteers), jobs=2)
        assert hub.published == 0
        assert serial.summaries == base.summaries
        assert parallel.summaries == base.summaries
        assert serial.rollup == base.rollup

    def test_hub_without_config_attaches_default_monitoring(self, volunteers):
        # Passing just a hub must imply config.monitor = MonitorConfig().
        base = FleetService(CONFIG).run(_specs(volunteers))
        hub = MonitorHub([RingAlertSink()])
        run = FleetService(CONFIG).run(_specs(volunteers), monitor=hub)
        assert run.summaries == base.summaries


class TestShardedService:
    def test_clean_cohort_wal_bytes_equal_serial(self, volunteers, tmp_path):
        a = ShardedFleetService(CONFIG, shards=_shards(tmp_path / "a"))
        base = a.run(_specs(volunteers))
        b = ShardedFleetService(MONITORED, shards=_shards(tmp_path / "b"))
        monitored = b.run(_specs(volunteers))
        assert monitored.summaries == base.summaries
        for sa, sb in zip(a.stores, b.stores):
            assert sa.wal_path.read_bytes() == sb.wal_path.read_bytes()

    def test_clean_cohort_wal_bytes_equal_parallel(self, volunteers, tmp_path):
        a = ShardedFleetService(CONFIG, shards=_shards(tmp_path / "a"))
        base = a.run(_specs(volunteers), jobs=2)
        hub = MonitorHub([RingAlertSink()])
        b = ShardedFleetService(MONITORED, shards=_shards(tmp_path / "b"))
        monitored = b.run(_specs(volunteers), jobs=2, monitor=hub)
        assert hub.published == 0
        assert monitored.summaries == base.summaries
        for sa, sb in zip(a.stores, b.stores):
            assert sa.wal_path.read_bytes() == sb.wal_path.read_bytes()


class TestProperty:
    """Property form over generated cohorts: whenever the monitor stays
    quiet, the monitored fleet is indistinguishable from the plain one
    (and parallel monitored always equals serial monitored)."""

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=5, deadline=None)
    def test_quiet_monitor_is_noop_and_parallel_matches(self, seed):
        specs = fleet_specs(seed=seed, n_users=3, n_days=9)
        config = FleetConfig(
            train_days=7, netmaster=NetMasterConfig(enable_circuit_breaker=False)
        )
        monitored_config = replace(config, monitor=MonitorConfig())
        base = FleetService(config).run(specs)
        hub = MonitorHub([RingAlertSink()])
        serial = FleetService(monitored_config).run(specs, monitor=hub)
        parallel = FleetService(monitored_config).run(specs, jobs=2)
        assert parallel.summaries == serial.summaries
        if hub.published == 0:
            assert serial.summaries == base.summaries
            assert serial.rollup == base.rollup
