"""Content-addressed trace cache: digests, hits, LRU, disk store."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.runtime.cache import (
    TraceCache,
    cohort_cache_key,
    configure_cache,
    default_cache,
)
from repro.traces import default_profiles, volunteer_profiles
from repro.traces.generator import generate_cohort


@pytest.fixture
def isolated_cache(monkeypatch):
    """A fresh default cache for the duration of one test."""
    import repro.runtime.cache as cache_mod

    fresh = TraceCache()
    monkeypatch.setattr(cache_mod, "_default_cache", fresh)
    return fresh


# ----------------------------------------------------------------------
# digests
# ----------------------------------------------------------------------


def test_key_is_stable_across_calls():
    profiles = default_profiles()
    k1 = cohort_cache_key(profiles, 2014, 21, 0)
    k2 = cohort_cache_key(default_profiles(), 2014, 21, 0)
    assert k1 == k2
    assert len(k1) == 64  # sha256 hex


def test_key_distinguishes_every_input():
    profiles = default_profiles()
    base = cohort_cache_key(profiles, 2014, 21, 0)
    assert cohort_cache_key(profiles, 2015, 21, 0) != base
    assert cohort_cache_key(profiles, 2014, 20, 0) != base
    assert cohort_cache_key(profiles, 2014, 21, 1) != base
    assert cohort_cache_key(volunteer_profiles(), 2014, 21, 0) != base
    assert cohort_cache_key(profiles[:4], 2014, 21, 0) != base


def test_key_sees_profile_content_changes():
    """A mutated persona parameter must change the digest (no aliasing)."""
    import copy

    profiles = default_profiles()
    base = cohort_cache_key(profiles, 2014, 21, 0)
    tweaked = copy.deepcopy(profiles)
    tweaked[0].weekday_intensity[3] += 1e-9
    assert cohort_cache_key(tweaked, 2014, 21, 0) != base


def test_key_accepts_numpy_seed_rejects_non_int():
    profiles = default_profiles()
    assert cohort_cache_key(profiles, np.int64(7), 21, 0) == cohort_cache_key(
        profiles, 7, 21, 0
    )
    # seed=None means fresh OS entropy: never cacheable.
    assert cohort_cache_key(profiles, None, 21, 0) is None


# ----------------------------------------------------------------------
# hit semantics
# ----------------------------------------------------------------------


def test_hit_is_bit_identical_to_regeneration(isolated_cache):
    first = generate_cohort(2, seed=5)
    second = generate_cohort(2, seed=5)
    assert isolated_cache.stats.misses == 1
    assert isolated_cache.stats.hits == 1
    for a, b in zip(first, second):
        assert a.user_id == b.user_id
        assert a.screen_sessions == b.screen_sessions
        assert a.usages == b.usages
        assert a.activities == b.activities


def test_hit_returns_independent_lists(isolated_cache):
    """Mutating a served cohort must not poison later hits."""
    first = generate_cohort(2, seed=5)
    n_activities = len(first[0].activities)
    first[0].activities.clear()
    first[0].screen_sessions.clear()
    second = generate_cohort(2, seed=5)
    assert len(second[0].activities) == n_activities
    assert second[0].screen_sessions
    # And the stored copy is not the served object either way.
    assert second[0] is not first[0]
    assert second[0].activities is not first[0].activities


def test_distinct_seeds_and_days_do_not_collide(isolated_cache):
    a = generate_cohort(2, seed=5)
    b = generate_cohort(2, seed=6)
    c = generate_cohort(3, seed=5)
    assert isolated_cache.stats.misses == 3
    assert isolated_cache.stats.hits == 0
    assert [t.user_id for t in a] == [t.user_id for t in b]
    assert a[0].activities != b[0].activities
    assert c[0].n_days == 3


def test_disabled_cache_always_regenerates(isolated_cache):
    isolated_cache.enabled = False
    generate_cohort(2, seed=5)
    generate_cohort(2, seed=5)
    assert isolated_cache.stats.hits == 0
    assert isolated_cache.stats.misses == 0
    assert len(isolated_cache) == 0


def test_entropy_seed_bypasses_cache(isolated_cache):
    """``seed=None`` draws OS entropy; such cohorts must never be cached."""
    generate_cohort(2, seed=None)
    assert isolated_cache.stats.misses == 0
    assert len(isolated_cache) == 0


# ----------------------------------------------------------------------
# LRU
# ----------------------------------------------------------------------


def test_lru_evicts_oldest():
    cache = TraceCache(max_entries=2)
    cache.put("a", [])
    cache.put("b", [])
    cache.lookup("a")  # refresh a
    cache.put("c", [])  # evicts b
    assert cache.lookup("b") is None
    assert cache.lookup("a") is not None
    assert cache.lookup("c") is not None
    assert cache.stats.evictions == 1


def test_max_entries_validated():
    with pytest.raises(ValueError, match="max_entries"):
        TraceCache(max_entries=0)


# ----------------------------------------------------------------------
# disk store
# ----------------------------------------------------------------------


def test_disk_store_roundtrip(isolated_cache, tmp_path):
    isolated_cache.cache_dir = tmp_path / "traces"
    original = generate_cohort(2, seed=5)
    assert isolated_cache.stats.disk_stores == 1
    # Drop memory: the next lookup must come from disk, bit-identical.
    isolated_cache.clear()
    again = generate_cohort(2, seed=5)
    assert isolated_cache.stats.disk_hits == 1
    for a, b in zip(original, again):
        assert a.user_id == b.user_id
        assert a.screen_sessions == b.screen_sessions
        assert a.activities == b.activities
    manifests = list((tmp_path / "traces").glob("*/manifest.json"))
    assert len(manifests) == 1
    manifest = json.loads(manifests[0].read_text())
    assert manifest["version"] == 1
    assert manifest["n_traces"] == len(original)


def test_disk_store_survives_fresh_process(tmp_path):
    """A second interpreter serves the cohort from disk, bit-identical."""
    script = """
import json, sys
from repro.runtime.cache import cache_stats, configure_cache
from repro.traces.generator import generate_cohort

configure_cache(enabled=True, cache_dir=sys.argv[1])
cohort = generate_cohort(2, seed=5)
stats = cache_stats()
print(json.dumps({
    "disk_hits": stats["disk_hits"],
    "disk_stores": stats["disk_stores"],
    "checksum": sum(len(t.activities) for t in cohort),
    "first_start": cohort[0].activities[0].time,
}))
"""
    runs = [
        json.loads(
            subprocess.run(
                [sys.executable, "-c", script, str(tmp_path / "store")],
                capture_output=True,
                text=True,
                check=True,
                cwd=Path(__file__).resolve().parents[2],
                env={
                    **os.environ,
                    "PYTHONPATH": str(
                        Path(__file__).resolve().parents[2] / "src"
                    ),
                    "REPRO_TRACE_CACHE": "1",
                },
            ).stdout
        )
        for _ in range(2)
    ]
    assert runs[0]["disk_stores"] == 1 and runs[0]["disk_hits"] == 0
    assert runs[1]["disk_stores"] == 0 and runs[1]["disk_hits"] == 1
    assert runs[0]["checksum"] == runs[1]["checksum"]
    assert runs[0]["first_start"] == runs[1]["first_start"]


def test_torn_disk_entry_is_a_miss(isolated_cache, tmp_path):
    isolated_cache.cache_dir = tmp_path
    generate_cohort(2, seed=5)
    entry = next(p for p in tmp_path.iterdir() if p.is_dir())
    (entry / "manifest.json").write_text("{not json")
    isolated_cache.clear()
    generate_cohort(2, seed=5)  # must regenerate, not crash
    assert isolated_cache.stats.misses == 2


def test_clear_disk_removes_entries(isolated_cache, tmp_path):
    isolated_cache.cache_dir = tmp_path
    generate_cohort(2, seed=5)
    assert any(p.is_dir() for p in tmp_path.iterdir())
    isolated_cache.clear(disk=True)
    assert not any(p.is_dir() for p in tmp_path.iterdir())


# ----------------------------------------------------------------------
# module-level configuration
# ----------------------------------------------------------------------


def test_configure_cache_roundtrip(isolated_cache, tmp_path):
    cache = configure_cache(enabled=False, max_entries=4, cache_dir=tmp_path)
    assert cache is default_cache()
    assert cache.enabled is False
    assert cache.max_entries == 4
    assert cache.cache_dir == tmp_path
    configure_cache(enabled=True, cache_dir=None)
    assert cache.enabled is True
    assert cache.cache_dir is None


def test_configure_cache_shrink_evicts(isolated_cache):
    for name in "abcd":
        isolated_cache.put(name, [])
    configure_cache(max_entries=2)
    assert len(isolated_cache) == 2
    assert isolated_cache.lookup("d") is not None
    with pytest.raises(ValueError, match="max_entries"):
        configure_cache(max_entries=0)
