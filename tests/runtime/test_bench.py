"""The perf harness behind BENCH_perf.json (quick workloads only)."""

from __future__ import annotations

import json

import pytest

from repro.runtime import bench


@pytest.fixture(scope="module")
def quick_report(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_perf.json"
    report = bench.run_bench(out, jobs=2, quick=True)
    return report, out


def test_report_schema(quick_report):
    report, out = quick_report
    on_disk = json.loads(out.read_text())
    assert on_disk == report
    assert report["schema"] == 1
    assert report["quick"] is True
    assert report["cpu_count"] >= 1
    for section, keys in {
        "cohort_generation": ("cold_s", "warm_s", "warm_speedup", "cache"),
        "policy_sweep": ("serial_s", "parallel_s", "speedup", "identical_results"),
        "fptas_batch": ("batch_s", "solves_per_s", "total_profit"),
    }.items():
        assert set(keys) <= set(report[section]), section


def test_warm_cache_beats_cold(quick_report):
    report, _ = quick_report
    cohort = report["cohort_generation"]
    assert cohort["warm_s"] < cohort["cold_s"]
    assert cohort["cache"]["hits"] >= 1


def test_sweep_is_deterministic(quick_report):
    report, _ = quick_report
    assert report["policy_sweep"]["identical_results"] is True
    assert report["policy_sweep"]["jobs"] == 2


def test_no_report_written_when_path_is_none():
    report = bench.bench_fptas_batch(n_solves=2, n_items=20)
    assert report["n_solves"] == 2
    assert report["total_profit"] > 0


def test_cli_check_mode(tmp_path, capsys):
    out = tmp_path / "perf.json"
    code = bench.main(["--quick", "--jobs", "2", "--check", "--out", str(out)])
    assert code == 0
    assert out.exists()
    stdout = capsys.readouterr().out
    assert "cohort generation" in stdout
    assert "policy sweep" in stdout
