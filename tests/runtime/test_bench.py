"""The perf harness behind BENCH_perf.json (quick workloads only)."""

from __future__ import annotations

import json

import pytest

from repro.runtime import bench


@pytest.fixture(scope="module")
def quick_report(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_perf.json"
    report = bench.run_bench(out, jobs=2, quick=True)
    return report, out


def test_report_schema(quick_report):
    report, out = quick_report
    on_disk = json.loads(out.read_text())
    assert on_disk == report
    assert report["schema"] == 1
    assert report["quick"] is True
    assert report["cpu_count"] >= 1
    for section, keys in {
        "cohort_generation": (
            "cold_s",
            "warm_s",
            "warm_speedup",
            "disk_warm_s",
            "disk_stores",
            "disk_hits",
            "cache",
        ),
        "policy_sweep": (
            "serial_s",
            "parallel_s",
            "speedup",
            "parallel_regression",
            "identical_results",
        ),
        "fptas_batch": (
            "batch_s",
            "solves_per_s",
            "batch_solves_per_s",
            "memo_warm_solves_per_s",
            "total_profit",
        ),
        "replay_kernel": ("replay_s", "sims_per_s", "windows_per_s"),
        "stream": ("events", "elapsed_s", "stream_events_per_s"),
        "shard_recovery": (
            "wal_records",
            "wal_appends",
            "durable_events_per_s",
            "recovery_points",
            "full_recovery_s",
            "recovery_records_per_s",
        ),
    }.items():
        assert set(keys) <= set(report[section]), section


def test_warm_cache_beats_cold(quick_report):
    report, _ = quick_report
    cohort = report["cohort_generation"]
    assert cohort["warm_s"] < cohort["cold_s"]
    assert cohort["cache"]["hits"] >= 1


def test_disk_store_exercised(quick_report):
    """The bench always runs against an on-disk store (tmp dir default),
    so disk accounting must show real traffic — the satellite fix for
    the committed report's ``disk_stores: 0``."""
    report, _ = quick_report
    cohort = report["cohort_generation"]
    assert cohort["disk_stores"] >= 1
    assert cohort["disk_hits"] >= 1
    assert cohort["disk_warm_s"] is not None


def test_memo_warm_batch_is_fastest(quick_report):
    report, _ = quick_report
    fptas = report["fptas_batch"]
    assert fptas["memo_entries"] >= 1
    assert fptas["memo_warm_solves_per_s"] > fptas["solves_per_s"]


def test_parallel_regression_flag_matches_timings(quick_report):
    report, _ = quick_report
    sweep = report["policy_sweep"]
    assert sweep["parallel_regression"] == (sweep["parallel_s"] > sweep["serial_s"])


def test_compare_reports_flags_regressions(quick_report):
    report, _ = quick_report
    assert bench.compare_reports(report, report) == []
    inflated = json.loads(json.dumps(report))
    inflated["fptas_batch"]["solves_per_s"] = report["fptas_batch"]["solves_per_s"] * 3
    inflated["cohort_generation"]["warm_s"] = report["cohort_generation"]["warm_s"] / 3
    failures = bench.compare_reports(report, inflated)
    assert len(failures) == 2
    assert any("solves_per_s" in f for f in failures)
    assert any("warm_s" in f for f in failures)


def test_shard_recovery_points_grow_with_wal_length(quick_report):
    report, _ = quick_report
    shards = report["shard_recovery"]
    points = shards["recovery_points"]
    assert len(points) == 3
    counts = [p["wal_records"] for p in points]
    assert counts == sorted(counts)
    assert counts[-1] == shards["wal_records"]
    assert all(p["recovery_s"] > 0 for p in points)
    assert shards["durable_events_per_s"] > 0


def test_compare_tolerates_baselines_without_shard_section(quick_report):
    report, _ = quick_report
    old = json.loads(json.dumps(report))
    del old["shard_recovery"]
    del old["stream"]
    assert bench.compare_reports(report, old) == []


def test_sweep_is_deterministic(quick_report):
    report, _ = quick_report
    assert report["policy_sweep"]["identical_results"] is True
    assert report["policy_sweep"]["jobs"] == 2


def test_no_report_written_when_path_is_none():
    report = bench.bench_fptas_batch(n_solves=2, n_items=20)
    assert report["n_solves"] == 2
    assert report["total_profit"] > 0


@pytest.fixture(scope="module")
def scale_section():
    # Tiny cohort: the structure and invariants are what's under test
    # here; real scale numbers come from `python -m repro fleet-scale`.
    return bench.bench_fleet_scale(n_users=4, n_days=8, reference_divisor=2)


def test_fleet_scale_section_schema(scale_section):
    section = scale_section
    assert section["spec_source"] == "iterator"
    assert section["n_users"] == 4
    assert section["reference_users"] == 2
    assert section["user_days"] == 4 * 8
    assert section["summaries_spilled"] == 4
    assert section["events"] > 0
    assert section["events_per_s"] > 0
    assert section["user_days_per_s"] > 0
    assert section["peak_rss_bytes"] > 0
    assert section["rss_flatness_ratio"] >= 1.0  # ru_maxrss is monotonic


def test_fleet_scale_compare_clause(scale_section):
    mine = {"fleet_scale": scale_section}
    assert bench.compare_reports(mine, mine) == []
    impossible = json.loads(json.dumps(mine))
    impossible["fleet_scale"]["events_per_s"] = 1e12
    failures = bench.compare_reports(mine, impossible)
    assert any("fleet_scale" in f for f in failures)
    # Baselines predating the section are record-only, never a failure.
    assert bench.compare_reports(mine, {"schema": 1}) == []


def test_fleet_scale_validates_cohort_floor():
    with pytest.raises(ValueError, match="reference_divisor"):
        bench.bench_fleet_scale(n_users=3, reference_divisor=10)


def test_fleet_scale_cli_merges_into_existing_report(tmp_path, capsys):
    out = tmp_path / "perf.json"
    out.write_text(json.dumps({"schema": 1, "stream": {"events": 1}}))
    code = bench.fleet_scale_main(
        ["--quick", "--users", "4", "--out", str(out)]
    )
    assert code == 0
    report = json.loads(out.read_text())
    assert report["stream"] == {"events": 1}  # merged, not clobbered
    assert report["fleet_scale"]["n_users"] == 4
    stdout = capsys.readouterr().out
    assert "user-days from an iterator source" in stdout
    assert "merged into" in stdout


def test_cli_check_mode(tmp_path, capsys):
    out = tmp_path / "perf.json"
    code = bench.main(["--quick", "--jobs", "2", "--check", "--out", str(out)])
    assert code == 0
    assert out.exists()
    stdout = capsys.readouterr().out
    assert "cohort generation" in stdout
    assert "policy sweep" in stdout
    assert "replay kernel" in stdout


def test_cli_compare_mode(tmp_path, capsys, quick_report):
    report, _ = quick_report
    out = tmp_path / "perf.json"
    # Self-comparison can never regress >2x.
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(report))
    code = bench.main(
        ["--quick", "--jobs", "2", "--out", str(out), "--compare", str(baseline)]
    )
    assert code == 0
    assert "no >2x regressions" in capsys.readouterr().out
    # An impossible baseline must fail the comparison.
    impossible = json.loads(json.dumps(report))
    impossible["fptas_batch"]["solves_per_s"] = 1e12
    baseline.write_text(json.dumps(impossible))
    code = bench.main(
        ["--quick", "--jobs", "2", "--out", str(out), "--compare", str(baseline)]
    )
    assert code == 1
    assert "PERF CHECK FAILED" in capsys.readouterr().err
