"""ParallelRunner: ordering, fallback, and serial/parallel equality."""

from __future__ import annotations

import pytest

from repro.baselines import (
    DelayBatchPolicy,
    NaivePolicy,
    NetMasterPolicy,
    OraclePolicy,
)
from repro.core.netmaster import NetMasterConfig
from repro.evaluation import split_history
from repro.evaluation.metrics import run_policy_over_days
from repro.runtime.parallel import (
    ParallelRunner,
    PolicyTask,
    execute_policy_tasks,
    parallel_map,
    run_policy_tasks,
)

# Module-level so it pickles into worker processes.


def _square(x: int) -> int:
    return x * x


def _fail_on_three(x: int) -> int:
    if x == 3:
        raise ValueError("three")
    return x


# ----------------------------------------------------------------------
# the runner itself
# ----------------------------------------------------------------------


def test_serial_map_preserves_order():
    assert ParallelRunner(1).map(_square, range(5)) == [0, 1, 4, 9, 16]


def test_parallel_map_preserves_order():
    runner = ParallelRunner(2)
    assert runner.map(_square, range(8)) == [x * x for x in range(8)]
    assert runner.fallbacks == 0


def test_single_task_stays_serial():
    # One task never pays pool start-up cost (and lambdas stay legal).
    assert ParallelRunner(4).map(lambda x: x + 1, [41]) == [42]


def test_jobs_validated():
    with pytest.raises(ValueError, match="jobs"):
        ParallelRunner(0)
    with pytest.raises(ValueError, match="chunksize"):
        ParallelRunner(2, chunksize=0)


def test_task_exception_propagates_like_serial():
    with pytest.raises(ValueError, match="three"):
        ParallelRunner(1).map(_fail_on_three, range(5))
    with pytest.raises(ValueError, match="three"):
        ParallelRunner(2).map(_fail_on_three, range(5))


def test_unpicklable_fn_falls_back_to_serial():
    runner = ParallelRunner(2)
    assert runner.map(lambda x: x * 10, [1, 2, 3]) == [10, 20, 30]
    assert runner.fallbacks == 1


def test_broken_pool_falls_back(monkeypatch):
    import repro.runtime.parallel as par

    class ExplodingPool:
        def __init__(self, *a, **kw):
            raise OSError("no processes in this sandbox")

    monkeypatch.setattr(par, "ProcessPoolExecutor", ExplodingPool)
    runner = ParallelRunner(2)
    assert runner.map(_square, [1, 2, 3]) == [1, 4, 9]
    assert runner.fallbacks == 1


def test_parallel_map_wrapper():
    assert parallel_map(_square, range(4), jobs=2) == [0, 1, 4, 9]


# ----------------------------------------------------------------------
# policy grids
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def grid(volunteers, wcdma):
    """(task list, per-volunteer held-out days) over three policies."""
    tasks = []
    for trace in volunteers:
        history, days = split_history(trace, 10)
        for name, policy in (
            ("baseline", NaivePolicy()),
            ("oracle", OraclePolicy()),
            ("netmaster", NetMasterPolicy(history, NetMasterConfig())),
        ):
            tasks.append(
                PolicyTask(name=name, policy=policy, days=tuple(days), model=wcdma)
            )
    return tasks


def test_policy_grid_parallel_equals_serial(grid):
    serial = run_policy_tasks(grid, jobs=1)
    parallel = run_policy_tasks(grid, jobs=2)
    assert len(serial) == len(parallel) == len(grid)
    for s_days, p_days in zip(serial, parallel):
        assert [m.energy_j for m in s_days] == [m.energy_j for m in p_days]
        assert [m.radio_on_s for m in s_days] == [m.radio_on_s for m in p_days]
        assert [m.interrupts for m in s_days] == [m.interrupts for m in p_days]


def test_execute_grid_parallel_equals_serial(grid, wcdma):
    serial = execute_policy_tasks(grid[:3], jobs=1)
    parallel = execute_policy_tasks(grid[:3], jobs=2)
    for s_days, p_days in zip(serial, parallel):
        for s, p in zip(s_days, p_days):
            assert s.policy == p.policy
            assert s.energy(wcdma).energy_j == p.energy(wcdma).energy_j


def test_day_fanout_for_stateless_policy(volunteers, wcdma):
    """Day-independent policies may fan per day; results identical."""
    _, days = split_history(volunteers[0], 10)
    policy = DelayBatchPolicy(60.0)
    assert policy.day_independent is True
    serial = run_policy_over_days(policy, days, wcdma)
    parallel = run_policy_over_days(policy, days, wcdma, jobs=2)
    assert [m.energy_j for m in serial] == [m.energy_j for m in parallel]


def test_stateful_policy_never_fans_per_day(volunteers, wcdma, monkeypatch):
    """NetMaster's circuit breaker carries state across days, so the
    per-day fan-out must not trigger for it — even with jobs>1."""
    import repro.runtime.parallel as par

    history, days = split_history(volunteers[0], 10)
    policy = NetMasterPolicy(history, NetMasterConfig())
    assert policy.day_independent is False

    def forbidden(*a, **kw):  # pragma: no cover - would mean a real bug
        raise AssertionError("stateful policy was fanned per day")

    monkeypatch.setattr(par, "run_policy_tasks", forbidden)
    serial = run_policy_over_days(policy, days, wcdma)
    with_jobs = run_policy_over_days(
        NetMasterPolicy(history, NetMasterConfig()), days, wcdma, jobs=4
    )
    assert [m.energy_j for m in serial] == [m.energy_j for m in with_jobs]


def test_fig7_parallel_cache_bit_identical():
    """The ISSUE acceptance check: fig7 at jobs=2 with the cache on is
    bit-identical to the serial, cache-off run at the same seed."""
    from repro.evaluation.experiments import fig7
    from repro.runtime.cache import configure_cache, default_cache

    cache = default_cache()
    was_enabled = cache.enabled
    try:
        configure_cache(enabled=False)
        serial = fig7(n_days=8, n_history_days=6)
        configure_cache(enabled=True)
        parallel = fig7(n_days=8, n_history_days=6, jobs=2)
        warm = fig7(n_days=8, n_history_days=6, jobs=2)
    finally:
        cache.enabled = was_enabled
    for ref in (parallel, warm):
        assert ref.netmaster_mean_saving == serial.netmaster_mean_saving
        assert ref.oracle_mean_saving == serial.oracle_mean_saving
        for vs, vp in zip(serial.volunteers, ref.volunteers):
            assert vs.energy_saving == vp.energy_saving
            assert vs.radio_on_s == vp.radio_on_s
            for name in vs.per_policy:
                assert [m.energy_j for m in vs.per_policy[name]] == [
                    m.energy_j for m in vp.per_policy[name]
                ]
