"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import io

from repro.__main__ import _REGISTRY, build_parser, main, run


class TestCli:
    def test_list(self):
        out = io.StringIO()
        assert run(["list"], out=out) == 0
        text = out.getvalue()
        for name in _REGISTRY:
            assert name in text

    def test_single_experiment(self):
        out = io.StringIO()
        assert run(["fig10b"], out=out) == 0
        assert "Fig 10(b)" in out.getvalue()

    def test_multiple_experiments(self):
        out = io.StringIO()
        assert run(["fig10a", "fig10b"], out=out) == 0
        text = out.getvalue()
        assert "Fig 10(a)" in text and "Fig 10(b)" in text

    def test_unknown_experiment(self):
        assert run(["nope"], out=io.StringIO()) == 2

    def test_seed_override(self):
        a, b = io.StringIO(), io.StringIO()
        assert run(["fig1a"], seed=1, out=a) == 0
        assert run(["fig1a"], seed=2, out=b) == 0
        assert a.getvalue() != b.getvalue()

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig7"])
        assert args.experiments == ["fig7"]
        assert args.seed is None
        assert args.out is None

    def test_list_rejects_other_names(self, capsys):
        assert run(["list", "fig7"], out=io.StringIO()) == 2
        assert "cannot be combined" in capsys.readouterr().err

    def test_all_rejects_other_names(self, capsys):
        assert run(["fig7", "all"], out=io.StringIO()) == 2
        assert "cannot be combined" in capsys.readouterr().err

    def test_list_and_all_reject_each_other(self):
        assert run(["list", "all"], out=io.StringIO()) == 2

    def test_out_writes_report_to_file(self, tmp_path):
        target = tmp_path / "report.txt"
        assert main(["fig10b", "--out", str(target)]) == 0
        assert "Fig 10(b)" in target.read_text(encoding="utf-8")

    def test_out_defaults_to_stdout(self, capsys):
        assert main(["fig10b"]) == 0
        assert "Fig 10(b)" in capsys.readouterr().out

    def test_registry_covers_every_paper_figure(self):
        expected = {
            "fig1a", "fig1b", "fig2", "fig3", "fig4", "fig5",
            "fig7", "fig8", "fig9", "fig10a", "fig10b", "fig10c",
            "ux", "approx", "robustness", "stream", "shards", "monitor",
        }
        assert set(_REGISTRY) == expected


class TestTelemetryCli:
    def test_parser_accepts_new_flags(self):
        args = build_parser().parse_args(
            ["fig7", "--quick", "--telemetry-out", "t", "--log-level", "info"]
        )
        assert args.quick is True
        assert args.telemetry_out == "t"
        assert args.log_level == "info"

    def test_parser_defaults_for_new_flags(self):
        args = build_parser().parse_args(["fig7"])
        assert args.quick is False
        assert args.telemetry_out is None
        assert args.log_level == "warning"

    def test_quick_kwargs_are_real_signatures(self):
        """Every --quick override must name actual driver keywords."""
        import inspect

        from repro.__main__ import _QUICK

        for name, kwargs in _QUICK.items():
            params = inspect.signature(_REGISTRY[name][0]).parameters
            for key in kwargs:
                assert key in params, f"{name}: bad quick kwarg {key!r}"

    def test_quick_run(self):
        out = io.StringIO()
        assert run(["approx"], out=out, quick=True) == 0
        assert "over 20 instances" in out.getvalue()

    def test_telemetry_out_writes_export(self, tmp_path, capsys):
        target = tmp_path / "tel"
        assert run(["fig10a"], out=io.StringIO(), telemetry_out=str(target)) == 0
        for name in ("metrics.json", "spans.jsonl", "trace.json", "results.json"):
            assert (target / name).exists(), name
        assert "telemetry written" in capsys.readouterr().err

    def test_telemetry_report_roundtrip(self, tmp_path, capsys):
        target = tmp_path / "tel"
        assert run(["fig10a"], out=io.StringIO(), telemetry_out=str(target)) == 0
        capsys.readouterr()
        assert main(["telemetry-report", str(target)]) == 0
        out = capsys.readouterr().out
        assert "Telemetry report" in out
        assert "== overall ==" in out

    def test_telemetry_report_usage_errors(self, tmp_path, capsys):
        assert main(["telemetry-report"]) == 2
        assert "usage" in capsys.readouterr().err
        assert main(["telemetry-report", str(tmp_path), "extra"]) == 2
        assert main(["telemetry-report", str(tmp_path / "missing")]) == 2
        assert "no telemetry found" in capsys.readouterr().err

    def test_log_level_configures_logging(self):
        import logging

        assert main(["list", "--log-level", "error"]) == 0
        assert logging.getLogger().level == logging.ERROR
        logging.getLogger().setLevel(logging.WARNING)


class TestServeDispatch:
    """`python -m repro serve` routes to the service CLI."""

    def test_serve_parser_flags(self):
        from repro.service.cli import build_parser

        args = build_parser().parse_args(
            ["--load", "--quick", "--port", "0", "--retention", "3"]
        )
        assert args.load and args.quick
        assert args.port == 0
        assert args.retention == 3

    def test_serve_config_mapping(self):
        from repro.service.cli import _config, build_parser

        args = build_parser().parse_args(
            ["--train-days", "5", "--retention", "2", "--event-budget", "100"]
        )
        config = _config(args)
        assert config.train_days == 5
        assert config.retention_days == 2
        assert config.event_budget == 100
        assert config.netmaster.enable_circuit_breaker is False

    def test_telemetry_report_accepts_metrics_file(self, tmp_path, capsys):
        import json

        snapshot = {
            "schema": 1,
            "overall": {
                "counters": {"service.req.health": 3},
                "gauges": {},
                "histograms": {},
            },
            "dropped_spans": 0,
        }
        path = tmp_path / "service_metrics.json"
        path.write_text(json.dumps(snapshot), encoding="utf-8")
        assert main(["telemetry-report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Metrics snapshot" in out
        assert "service.req.health" in out
