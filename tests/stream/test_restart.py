"""Mid-stream restart determinism: both services, including a real SIGKILL."""

from __future__ import annotations

import pytest

from repro.core.netmaster import NetMasterConfig
from repro.stream import (
    FleetConfig,
    FleetService,
    FleetUserSpec,
    ShardConfig,
    ShardedFleetService,
)
from repro.stream.crash_demo import run_crash_drill
from repro.stream.shards import append_record, read_wal

CONFIG = FleetConfig(
    train_days=10, netmaster=NetMasterConfig(enable_circuit_breaker=False)
)


def _specs(volunteers):
    return [
        FleetUserSpec(user_id=t.user_id, n_days=t.n_days, trace=t) for t in volunteers
    ]


class TestShardedRestart:
    def test_restart_from_any_wal_prefix_matches_unbroken_run(
        self, volunteers, tmp_path
    ):
        """Cut the fleet's WALs after every prefix length; each restart
        must finish byte-identical to the run that never stopped."""
        base = FleetService(CONFIG).run(_specs(volunteers))
        full = ShardedFleetService(
            CONFIG, shards=ShardConfig(root=tmp_path / "full", n_shards=1)
        )
        full.run(_specs(volunteers))
        records = read_wal(full.stores[0].wal_path).records
        assert len(records) >= len(volunteers)

        for cut in range(len(records)):
            root = tmp_path / f"cut-{cut}"
            shards = ShardConfig(root=root, n_shards=1)
            wal = shards.shard_path(0) / "wal-00000000.jsonl"
            for record in records[:cut]:
                append_record(wal, record)
            resumed = ShardedFleetService(CONFIG, shards=shards)
            resumed.recover()
            result = resumed.run(_specs(volunteers))
            assert result.summaries == base.summaries, f"prefix of {cut} records"

    def test_restart_counts_resumed_and_recovered_users(self, volunteers, tmp_path):
        full = ShardedFleetService(
            CONFIG, shards=ShardConfig(root=tmp_path / "full", n_shards=1)
        )
        full.run(_specs(volunteers))
        records = read_wal(full.stores[0].wal_path).records
        # Cut right after the first user's done record plus one day of
        # the second user: one recovered, one resumed.
        done_idx = next(i for i, r in enumerate(records) if r["type"] == "done")
        cut = done_idx + 2
        assert records[cut - 1]["type"] == "day"
        shards = ShardConfig(root=tmp_path / "cut", n_shards=1)
        wal = shards.shard_path(0) / "wal-00000000.jsonl"
        for record in records[:cut]:
            append_record(wal, record)
        resumed = ShardedFleetService(CONFIG, shards=shards)
        resumed.recover()
        result = resumed.run(_specs(volunteers))
        assert result.recovered_users == 1
        assert result.resumed_users == 1


class TestFleetRestart:
    def test_checkpointed_half_fleet_plus_rest_matches_full_run(
        self, volunteers, tmp_path
    ):
        specs = _specs(volunteers)
        full = FleetService(CONFIG).run(specs)

        first = FleetService(CONFIG).run(specs[:1])
        path = tmp_path / "fleet.json"
        FleetService.checkpoint(path, first)
        # "Restart": a new process would load the document and finish
        # the remaining users.
        restored = FleetService.load_checkpoint(path)
        rest = FleetService(CONFIG).run(specs[1:])
        assert restored.summaries + rest.summaries == full.summaries


class TestSigkillDrill:
    @pytest.mark.slow
    def test_kill_mid_run_recover_equal(self, tmp_path):
        report = run_crash_drill(
            tmp_path / "drill",
            seed=617,
            n_users=4,
            n_days=9,
            train_days=7,
            n_shards=2,
            kill_after=3,
        )
        assert report.killed_by_sigkill, report
        assert report.matches_baseline, report
        assert report.replayed_records == 3
