"""FleetService.checkpoint: atomic writes, exact round-trips, errors."""

from __future__ import annotations

import json

import pytest

from repro.core.netmaster import NetMasterConfig
from repro.stream import CheckpointError, FleetConfig, FleetService, FleetUserSpec

CONFIG = FleetConfig(
    train_days=10, netmaster=NetMasterConfig(enable_circuit_breaker=False)
)


@pytest.fixture(scope="module")
def result(volunteers):
    specs = [
        FleetUserSpec(user_id=t.user_id, n_days=t.n_days, trace=t) for t in volunteers
    ]
    return FleetService(CONFIG).run(specs)


class TestRoundTrip:
    def test_load_rebuilds_an_equal_result(self, result, tmp_path):
        path = tmp_path / "fleet.json"
        FleetService.checkpoint(path, result)
        loaded = FleetService.load_checkpoint(path)
        assert loaded.summaries == result.summaries
        assert loaded.shed_users == result.shed_users
        assert loaded.elapsed_s == result.elapsed_s

    def test_write_leaves_no_temp_files(self, result, tmp_path):
        FleetService.checkpoint(tmp_path / "fleet.json", result)
        assert [p.name for p in tmp_path.iterdir()] == ["fleet.json"]

    def test_overwrite_is_atomic_replace(self, result, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text("old document")
        FleetService.checkpoint(path, result)
        doc = json.loads(path.read_text())
        assert doc["format"] == 1


class TestLoadErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="unreadable"):
            FleetService.load_checkpoint(tmp_path / "nope.json")

    def test_truncated_json(self, result, tmp_path):
        path = tmp_path / "fleet.json"
        FleetService.checkpoint(path, result)
        path.write_text(path.read_text()[:40])
        with pytest.raises(CheckpointError, match="unreadable"):
            FleetService.load_checkpoint(path)

    def test_unknown_format(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps({"format": 99, "summaries": []}))
        with pytest.raises(CheckpointError, match="format"):
            FleetService.load_checkpoint(path)

    def test_structurally_broken_document(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(
            json.dumps({"format": 1, "summaries": [{"user_id": "u"}]})
        )
        with pytest.raises(CheckpointError, match="corrupt"):
            FleetService.load_checkpoint(path)
