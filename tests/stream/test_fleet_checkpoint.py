"""FleetService.checkpoint: atomic writes, exact round-trips, errors."""

from __future__ import annotations

import json

import pytest

from repro.core.netmaster import NetMasterConfig
from repro.stream import CheckpointError, FleetConfig, FleetService, FleetUserSpec

CONFIG = FleetConfig(
    train_days=10, netmaster=NetMasterConfig(enable_circuit_breaker=False)
)


@pytest.fixture(scope="module")
def result(volunteers):
    specs = [
        FleetUserSpec(user_id=t.user_id, n_days=t.n_days, trace=t) for t in volunteers
    ]
    return FleetService(CONFIG).run(specs)


class TestRoundTrip:
    def test_load_rebuilds_an_equal_result(self, result, tmp_path):
        path = tmp_path / "fleet.json"
        FleetService.checkpoint(path, result)
        loaded = FleetService.load_checkpoint(path)
        assert loaded.summaries == result.summaries
        assert loaded.shed_users == result.shed_users
        assert loaded.elapsed_s == result.elapsed_s

    def test_write_leaves_no_temp_files(self, result, tmp_path):
        FleetService.checkpoint(tmp_path / "fleet.json", result)
        assert [p.name for p in tmp_path.iterdir()] == ["fleet.json"]

    def test_overwrite_is_atomic_replace(self, result, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text("old document")
        FleetService.checkpoint(path, result)
        doc = json.loads(path.read_text())
        assert doc["format"] == 2

    def test_rollup_round_trips_bit_exactly(self, result, tmp_path):
        path = tmp_path / "fleet.json"
        FleetService.checkpoint(path, result)
        loaded = FleetService.load_checkpoint(path)
        assert loaded.rollup == result.rollup


class TestLoadErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="unreadable"):
            FleetService.load_checkpoint(tmp_path / "nope.json")

    def test_truncated_json(self, result, tmp_path):
        path = tmp_path / "fleet.json"
        FleetService.checkpoint(path, result)
        path.write_text(path.read_text()[:40])
        with pytest.raises(CheckpointError, match="unreadable"):
            FleetService.load_checkpoint(path)

    def test_unknown_format(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps({"format": 99, "summaries": []}))
        with pytest.raises(CheckpointError, match="format"):
            FleetService.load_checkpoint(path)

    def test_structurally_broken_document(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(
            json.dumps({"format": 2, "summaries": [{"user_id": "u"}]})
        )
        with pytest.raises(CheckpointError, match="corrupt"):
            FleetService.load_checkpoint(path)

    def test_old_format_raises_strict(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(
            json.dumps({"format": 1, "summaries": [], "shed_users": 0, "elapsed_s": 0.1})
        )
        with pytest.raises(CheckpointError, match="format"):
            FleetService.load_checkpoint(path)


class TestLenientLoad:
    def test_current_format_loads_clean(self, result, tmp_path):
        path = tmp_path / "fleet.json"
        FleetService.checkpoint(path, result)
        load = FleetService.load_checkpoint(path, strict=False)
        assert load.ok and not load.salvaged
        assert load.result.summaries == result.summaries
        assert load.result.rollup == result.rollup

    def test_format_1_upgrades_by_refolding(self, result, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(
            json.dumps(
                {
                    "format": 1,
                    "summaries": [s.as_dict() for s in result.summaries],
                    "shed_users": result.shed_users,
                    "elapsed_s": result.elapsed_s,
                }
            )
        )
        load = FleetService.load_checkpoint(path, strict=False)
        assert load.salvaged
        assert any("pre-rollup" in issue for issue in load.issues)
        assert load.result.summaries == result.summaries
        assert load.result.rollup == result.rollup
        assert load.result.shed_users == result.shed_users

    def test_format_1_drops_corrupt_summaries(self, result, tmp_path):
        docs = [s.as_dict() for s in result.summaries]
        docs.insert(1, {"user_id": "broken"})
        path = tmp_path / "fleet.json"
        path.write_text(
            json.dumps(
                {"format": 1, "summaries": docs, "shed_users": 0, "elapsed_s": 0.5}
            )
        )
        load = FleetService.load_checkpoint(path, strict=False)
        assert load.salvaged
        assert any("dropped" in issue for issue in load.issues)
        assert load.result.summaries == result.summaries

    def test_unreadable_document_yields_no_result(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text("{ torn")
        load = FleetService.load_checkpoint(path, strict=False)
        assert load.result is None and not load.ok
        assert any("unreadable" in issue for issue in load.issues)

    def test_unknown_format_yields_no_result(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps({"format": 99}))
        load = FleetService.load_checkpoint(path, strict=False)
        assert load.result is None
        assert any("format" in issue for issue in load.issues)
