"""ShardedFleetService: byte-equality with the fleet, shedding, budgets."""

from __future__ import annotations

import pytest

from repro.core.netmaster import NetMasterConfig
from repro.stream import (
    FleetConfig,
    FleetService,
    FleetUserSpec,
    ShardConfig,
    ShardedFleetService,
    shard_of,
)

CONFIG = FleetConfig(
    train_days=10, netmaster=NetMasterConfig(enable_circuit_breaker=False)
)


def _specs(volunteers):
    return [
        FleetUserSpec(user_id=t.user_id, n_days=t.n_days, trace=t) for t in volunteers
    ]


def _shards(tmp_path, **kwargs):
    kwargs.setdefault("n_shards", 2)
    return ShardConfig(root=tmp_path / "shards", **kwargs)


class TestFleetEquality:
    """The property the whole layer is gated on: sharded == fleet."""

    def test_matches_fleet_service_byte_for_byte(self, volunteers, tmp_path):
        base = FleetService(CONFIG).run(_specs(volunteers))
        sharded = ShardedFleetService(CONFIG, shards=_shards(tmp_path)).run(
            _specs(volunteers)
        )
        assert sharded.summaries == base.summaries
        assert sharded.shed_users == base.shed_users

    def test_matches_under_load_shedding(self, volunteers, tmp_path):
        config = FleetConfig(
            train_days=10,
            batch_size=1,
            event_budget=1,
            netmaster=CONFIG.netmaster,
        )
        base = FleetService(config).run(_specs(volunteers))
        sharded = ShardedFleetService(config, shards=_shards(tmp_path)).run(
            _specs(volunteers)
        )
        assert sharded.summaries == base.summaries
        assert sharded.shed_users == base.shed_users == len(volunteers) - 1

    def test_matches_with_checkpoint_cadence(self, volunteers, tmp_path):
        config = FleetConfig(
            train_days=10, checkpoint_every_days=1, netmaster=CONFIG.netmaster
        )
        base = FleetService(config).run(_specs(volunteers))
        sharded = ShardedFleetService(config, shards=_shards(tmp_path)).run(
            _specs(volunteers)
        )
        assert sharded.summaries == base.summaries

    def test_parallel_matches_serial(self, volunteers, tmp_path):
        serial = ShardedFleetService(CONFIG, shards=_shards(tmp_path / "a")).run(
            _specs(volunteers)
        )
        parallel = ShardedFleetService(CONFIG, shards=_shards(tmp_path / "b")).run(
            _specs(volunteers), jobs=2
        )
        assert parallel.summaries == serial.summaries

    def test_parallel_writes_identical_wals(self, volunteers, tmp_path):
        a = ShardedFleetService(CONFIG, shards=_shards(tmp_path / "a"))
        a.run(_specs(volunteers))
        b = ShardedFleetService(CONFIG, shards=_shards(tmp_path / "b"))
        b.run(_specs(volunteers), jobs=2)
        for sa, sb in zip(a.stores, b.stores):
            assert sa.wal_path.read_bytes() == sb.wal_path.read_bytes()


class TestIteratorSource:
    """Lazy spec sources leave identical WAL bytes and results."""

    def test_iterator_equals_list_wal_for_wal(self, volunteers, tmp_path):
        a = ShardedFleetService(CONFIG, shards=_shards(tmp_path / "a"))
        base = a.run(_specs(volunteers))
        b = ShardedFleetService(CONFIG, shards=_shards(tmp_path / "b"))
        lazy = b.run(iter(_specs(volunteers)))
        assert lazy.summaries == base.summaries
        assert lazy.rollup == base.rollup
        for sa, sb in zip(a.stores, b.stores):
            assert sa.wal_path.read_bytes() == sb.wal_path.read_bytes()

    def test_iterator_equals_list_in_parallel(self, volunteers, tmp_path):
        a = ShardedFleetService(CONFIG, shards=_shards(tmp_path / "a"))
        base = a.run(_specs(volunteers), jobs=2)
        b = ShardedFleetService(CONFIG, shards=_shards(tmp_path / "b"))
        lazy = b.run(iter(_specs(volunteers)), jobs=2)
        assert lazy.summaries == base.summaries
        for sa, sb in zip(a.stores, b.stores):
            assert sa.wal_path.read_bytes() == sb.wal_path.read_bytes()

    def test_iterator_sheds_the_same_tail(self, volunteers, tmp_path):
        config = FleetConfig(
            train_days=10,
            batch_size=1,
            event_budget=1,
            netmaster=CONFIG.netmaster,
        )
        base = ShardedFleetService(config, shards=_shards(tmp_path / "a")).run(
            _specs(volunteers)
        )
        lazy = ShardedFleetService(config, shards=_shards(tmp_path / "b")).run(
            iter(_specs(volunteers))
        )
        assert lazy.shed_users == base.shed_users == len(volunteers) - 1
        assert lazy.summaries == base.summaries

    def test_unretained_spilled_run_matches_wal_bytes(self, volunteers, tmp_path):
        config = FleetConfig(
            train_days=10,
            retain_summaries=False,
            summary_spill=tmp_path / "summaries.jsonl",
            netmaster=CONFIG.netmaster,
        )
        a = ShardedFleetService(CONFIG, shards=_shards(tmp_path / "a"))
        base = a.run(_specs(volunteers))
        b = ShardedFleetService(config, shards=_shards(tmp_path / "b"))
        lean = b.run(iter(_specs(volunteers)))
        assert lean.rollup.spilled == len(volunteers)
        assert lean.summaries == base.summaries  # re-read from the spill
        for sa, sb in zip(a.stores, b.stores):
            assert sa.wal_path.read_bytes() == sb.wal_path.read_bytes()


class TestDurability:
    def test_second_run_is_served_from_the_log(self, volunteers, tmp_path):
        shards = _shards(tmp_path)
        first = ShardedFleetService(CONFIG, shards=shards)
        a = first.run(_specs(volunteers))
        second = ShardedFleetService(CONFIG, shards=shards)
        second.recover()
        b = second.run(_specs(volunteers))
        assert b.summaries == a.summaries
        assert b.recovered_users == len(volunteers)
        # Nothing streams twice: no new WAL appends on the second pass.
        assert all(store.appends == 0 for store in second.stores)

    def test_users_route_to_their_hashed_shard(self, volunteers, tmp_path):
        shards = _shards(tmp_path)
        service = ShardedFleetService(CONFIG, shards=shards)
        service.run(_specs(volunteers))
        for trace in volunteers:
            owner = shard_of(trace.user_id, shards.n_shards)
            for i, store in enumerate(service.stores):
                assert (store.get(trace.user_id) is not None) == (i == owner)

    def test_recover_on_fresh_root_is_safe(self, tmp_path):
        service = ShardedFleetService(CONFIG, shards=_shards(tmp_path))
        reports = service.recover()
        assert all(not r.existed for r in reports)


class TestPerShardBudget:
    def test_hot_shard_sheds_alone(self, volunteers, tmp_path):
        # Stream everyone once so shard event counts are known...
        shards = _shards(tmp_path, shard_event_budget=1)
        service = ShardedFleetService(CONFIG, shards=shards)
        first = service.run(_specs(volunteers))
        assert first.users == len(volunteers)  # budgets bite at *admission*
        # ...then admit a fresh user routed to each shard: only users on
        # now-over-budget shards are shed, others stream fine.
        fresh = [
            FleetUserSpec(user_id=f"fresh-{i}", n_days=3, seed=100 + i)
            for i in range(6)
        ]
        over = {
            i for i, store in enumerate(service.stores) if store.events >= 1
        }
        second = service.run(fresh)
        expect_shed = sum(
            1 for s in fresh if shard_of(s.user_id, shards.n_shards) in over
        )
        assert second.shard_shed_users == expect_shed
        assert second.users == len(fresh) - expect_shed

    def test_shedding_is_deterministic_across_jobs(self, volunteers, tmp_path):
        specs = _specs(volunteers) + [
            FleetUserSpec(user_id=f"extra-{i}", n_days=3, seed=50 + i)
            for i in range(4)
        ]
        results = []
        for name, jobs in (("a", 1), ("b", 2)):
            shards = _shards(tmp_path / name, shard_event_budget=1)
            service = ShardedFleetService(
                FleetConfig(
                    train_days=2, batch_size=2, netmaster=CONFIG.netmaster
                ),
                shards=shards,
            )
            results.append(service.run(specs, jobs=jobs))
        assert results[0].summaries == results[1].summaries
        assert results[0].shard_shed_users == results[1].shard_shed_users

    def test_config_validation(self, tmp_path):
        with pytest.raises(ValueError, match="n_shards"):
            ShardConfig(root=tmp_path, n_shards=0)
        with pytest.raises(ValueError, match="shard_event_budget"):
            ShardConfig(root=tmp_path, shard_event_budget=-1)


class TestStats:
    def test_stats_cover_every_shard(self, volunteers, tmp_path):
        shards = _shards(tmp_path, n_shards=3)
        service = ShardedFleetService(CONFIG, shards=shards)
        result = service.run(_specs(volunteers))
        assert len(result.shard_stats) == 3
        assert sum(s.done_users for s in result.shard_stats) == len(volunteers)
        assert sum(s.events for s in result.shard_stats) == result.events
        assert result.events_per_s > 0
