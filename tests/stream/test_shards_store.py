"""ShardStore: routing, durable appends, compaction, recovery."""

from __future__ import annotations

import json

import pytest

from repro.stream.shards import ShardStore, shard_of
from repro.stream.shards.store import MANIFEST_NAME


def _day(user, i=0):
    return {"type": "day", "user_id": user, "engine": {"events": i}, "acc": {"i": i}}


def _done(user, events=10):
    return {
        "type": "done",
        "user_id": user,
        "engine": {"events": events},
        "acc": {},
        "summary": {"user_id": user, "events": events},
    }


class TestShardOf:
    def test_deterministic_and_in_range(self):
        for n in (1, 2, 7):
            for uid in ("a", "b", "stream-0001", "日本語"):
                s = shard_of(uid, n)
                assert s == shard_of(uid, n)
                assert 0 <= s < n

    def test_spreads_users(self):
        shards = {shard_of(f"user-{i:04d}", 8) for i in range(200)}
        assert len(shards) == 8

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="n_shards"):
            shard_of("u", 0)


class TestAppendAndState:
    def test_day_then_done_tracks_user(self, tmp_path):
        store = ShardStore(tmp_path / "s0")
        store.append(_day("u1", 1))
        assert store.get("u1").resumable
        store.append(_done("u1"))
        state = store.get("u1")
        assert state.done and not state.resumable
        assert store.events == 10

    def test_events_counts_only_done_users(self, tmp_path):
        store = ShardStore(tmp_path / "s0")
        store.append(_done("u1", events=3))
        store.append(_day("u2", 1))
        assert store.events == 3

    def test_unknown_payload_type_rejected_on_append(self, tmp_path):
        store = ShardStore(tmp_path / "s0")
        with pytest.raises(ValueError, match="unknown WAL payload"):
            store.append({"type": "nope", "user_id": "u"})

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="compact_every_records"):
            ShardStore(tmp_path, compact_every_records=0)


class TestCompaction:
    def test_threshold_triggers_new_generation(self, tmp_path):
        store = ShardStore(tmp_path / "s0", compact_every_records=3)
        for i in range(3):
            store.append(_day("u1", i))
        assert store.generation == 1
        assert store.wal_records == 0
        manifest = json.loads((tmp_path / "s0" / MANIFEST_NAME).read_text())
        assert manifest["generation"] == 1
        assert manifest["snapshot"] == "snapshot-00000001.json"
        assert manifest["snapshot_sha256"]

    def test_old_generation_files_removed(self, tmp_path):
        store = ShardStore(tmp_path / "s0", compact_every_records=2)
        for i in range(4):
            store.append(_day("u1", i))
        names = sorted(p.name for p in (tmp_path / "s0").iterdir())
        assert names == [
            MANIFEST_NAME,
            "snapshot-00000002.json",
            "wal-00000002.jsonl",
        ]

    def test_state_survives_compaction(self, tmp_path):
        store = ShardStore(tmp_path / "s0", compact_every_records=2)
        store.append(_day("u1", 0))
        store.append(_done("u2", events=7))
        assert store.generation == 1
        fresh = ShardStore(tmp_path / "s0")
        fresh.recover()
        assert fresh.get("u1").resumable
        assert fresh.get("u2").done
        assert fresh.events == 7


class TestRecovery:
    def test_empty_directory_recovers_to_nothing(self, tmp_path):
        store = ShardStore(tmp_path / "s0")
        report = store.recover()
        assert not report.existed
        assert report.users == 0

    def test_replays_snapshot_plus_wal_tail(self, tmp_path):
        store = ShardStore(tmp_path / "s0", compact_every_records=2)
        store.append(_day("u1", 0))
        store.append(_day("u1", 1))  # compaction fires here
        store.append(_day("u1", 2))  # lands in the gen-1 WAL
        fresh = ShardStore(tmp_path / "s0")
        report = fresh.recover()
        assert report.existed
        assert report.replayed_records == 1
        assert fresh.get("u1").engine_state == {"events": 2}
        assert fresh.generation == 1

    def test_recover_repairs_torn_wal(self, tmp_path):
        store = ShardStore(tmp_path / "s0")
        store.append(_day("u1", 0))
        with open(store.wal_path, "ab") as fh:
            fh.write(b'feedface {"half')
        fresh = ShardStore(tmp_path / "s0")
        report = fresh.recover()
        assert report.wal_damaged
        assert report.replayed_records == 1
        assert any("torn" in issue for issue in report.issues)
        # The repaired WAL accepts appends and reads clean again.
        fresh.append(_day("u1", 1))
        again = ShardStore(tmp_path / "s0")
        assert not again.recover().wal_damaged

    def test_missing_manifest_falls_back_to_scan(self, tmp_path):
        store = ShardStore(tmp_path / "s0", compact_every_records=2)
        for i in range(3):
            store.append(_day("u1", i))
        (tmp_path / "s0" / MANIFEST_NAME).unlink()
        fresh = ShardStore(tmp_path / "s0")
        report = fresh.recover()
        assert fresh.generation == 1
        assert fresh.get("u1").engine_state == {"events": 2}
        assert any("manifest missing" in issue for issue in report.issues)

    def test_corrupt_snapshot_salvages_wal_tail(self, tmp_path):
        store = ShardStore(tmp_path / "s0", compact_every_records=2)
        store.append(_done("u1"))
        store.append(_day("u2", 0))  # compaction fires
        store.append(_day("u2", 1))  # gen-1 WAL
        snapshot = tmp_path / "s0" / "snapshot-00000001.json"
        snapshot.write_bytes(snapshot.read_bytes()[:-7] + b"garbage")
        fresh = ShardStore(tmp_path / "s0")
        report = fresh.recover()
        assert any("content hash" in issue for issue in report.issues)
        # u1 lived only in the snapshot: lost.  u2's tail survives.
        assert fresh.get("u1") is None
        assert fresh.get("u2").engine_state == {"events": 1}

    def test_recovery_is_idempotent(self, tmp_path):
        store = ShardStore(tmp_path / "s0")
        store.append(_day("u1", 0))
        store.append(_done("u2"))
        a = ShardStore(tmp_path / "s0")
        a.recover()
        b = ShardStore(tmp_path / "s0")
        b.recover()
        assert {u: s.engine_state for u, s in a.users.items()} == {
            u: s.engine_state for u, s in b.users.items()
        }
