"""WAL framing: CRC round-trips, torn tails, truncation repair."""

from __future__ import annotations

import pytest

from repro.stream.shards import (
    append_record,
    decode_record,
    encode_record,
    read_wal,
    repair_wal,
)


class TestFraming:
    def test_encode_decode_round_trip(self):
        payload = {"type": "day", "user_id": "u1", "x": 0.1 + 0.2}
        line = encode_record(payload)
        assert decode_record(line.encode("utf-8")) == payload

    def test_floats_survive_bit_exactly(self):
        payload = {"v": 1.0 / 3.0}
        out = decode_record(encode_record(payload).encode("utf-8"))
        assert out["v"] == payload["v"]

    def test_flipped_byte_fails_crc(self):
        line = bytearray(encode_record({"a": 1}).encode("utf-8"))
        line[-1] ^= 0x01
        with pytest.raises(ValueError, match="CRC"):
            decode_record(bytes(line))

    def test_missing_checksum_prefix_rejected(self):
        with pytest.raises(ValueError, match="checksum"):
            decode_record(b'{"a": 1}')

    def test_non_hex_checksum_rejected(self):
        with pytest.raises(ValueError, match="non-hex"):
            decode_record(b'zzzzzzzz {"a": 1}')

    def test_non_object_payload_rejected(self):
        line = encode_record({"a": 1}).split(" ", 1)
        import zlib

        body = b"[1, 2]"
        crc = zlib.crc32(body) & 0xFFFFFFFF
        with pytest.raises(ValueError, match="object"):
            decode_record(f"{crc:08x} ".encode() + body)
        assert line  # silence unused warning


class TestReadWal:
    def test_missing_file_is_empty_and_undamaged(self, tmp_path):
        result = read_wal(tmp_path / "nope.jsonl")
        assert result.records == ()
        assert not result.damaged

    def test_append_then_read(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        append_record(wal, {"i": 0})
        append_record(wal, {"i": 1})
        result = read_wal(wal)
        assert [r["i"] for r in result.records] == [0, 1]
        assert not result.damaged
        assert result.good_bytes == wal.stat().st_size

    def test_torn_final_write_detected(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        append_record(wal, {"i": 0})
        with open(wal, "ab") as fh:
            fh.write(b'deadbeef {"i": 1')  # no newline: torn
        result = read_wal(wal)
        assert [r["i"] for r in result.records] == [0]
        assert result.damaged
        assert "torn" in result.issue

    def test_corrupt_middle_record_stops_replay(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        append_record(wal, {"i": 0})
        with open(wal, "ab") as fh:
            fh.write(b'00000000 {"i": "bad-crc"}\n')
        append_record(wal, {"i": 2})
        result = read_wal(wal)
        # Everything after the damage is untrusted, even if well-formed.
        assert [r["i"] for r in result.records] == [0]
        assert result.damaged
        assert "record 2" in result.issue


class TestRepairWal:
    def test_repair_truncates_to_last_good_record(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        append_record(wal, {"i": 0})
        good_size = wal.stat().st_size
        with open(wal, "ab") as fh:
            fh.write(b"garbage")
        result = read_wal(wal)
        assert repair_wal(wal, result)
        assert wal.stat().st_size == good_size
        # After repair the log reads clean and appends continue.
        append_record(wal, {"i": 1})
        healed = read_wal(wal)
        assert not healed.damaged
        assert [r["i"] for r in healed.records] == [0, 1]

    def test_repair_is_a_noop_on_clean_logs(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        append_record(wal, {"i": 0})
        assert not repair_wal(wal, read_wal(wal))
