"""FleetRollup: fold equivalence, JSON round-trips, spill lifecycle."""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.core.netmaster import NetMasterConfig
from repro.stream import (
    FleetConfig,
    FleetRollup,
    FleetService,
    FleetUserSpec,
    SummarySpill,
    iter_spilled,
    read_spilled,
)
from repro.stream.rollup import SAVINGS_BUCKETS_J

CONFIG = FleetConfig(
    train_days=10, netmaster=NetMasterConfig(enable_circuit_breaker=False)
)


@pytest.fixture(scope="module")
def result(volunteers):
    specs = [
        FleetUserSpec(user_id=t.user_id, n_days=t.n_days, trace=t) for t in volunteers
    ]
    return FleetService(CONFIG).run(specs)


class TestFold:
    def test_refolding_summaries_reproduces_the_run_rollup(self, result):
        rollup = FleetRollup()
        for summary in result.summaries:
            rollup.fold(summary)
        rollup.spilled = result.rollup.spilled
        assert rollup == result.rollup

    def test_counters_match_summary_totals(self, result):
        r = result.rollup
        assert r.users == len(result.summaries)
        assert r.events == sum(s.events for s in result.summaries)
        assert r.energy_j == sum(s.energy_j for s in result.summaries)
        assert r.checkpoints == sum(s.checkpoints for s in result.summaries)

    def test_histogram_counts_every_user_once(self, result):
        r = result.rollup
        assert sum(r.savings_hist) == r.users
        assert len(r.savings_hist) == len(SAVINGS_BUCKETS_J) + 1

    def test_moments_bound_the_mean(self, result):
        r = result.rollup
        assert r.energy_day_min <= r.energy_day_mean <= r.energy_day_max
        assert r.energy_day_sumsq >= 0

    def test_empty_rollup_derived_values(self):
        r = FleetRollup()
        assert r.energy_day_mean == 0.0
        assert r.savings_fraction(0.0) == 0.0
        assert r.energy_day_min is None and r.energy_day_max is None

    def test_savings_fraction(self, result):
        r = result.rollup
        naive = 2.0 * r.energy_j
        assert r.savings_fraction(naive) == 1.0 - r.energy_j / naive


class TestRoundTrip:
    def test_state_dict_survives_json_bit_exactly(self, result):
        state = json.loads(json.dumps(result.rollup.state_dict()))
        assert FleetRollup.from_state(state) == result.rollup

    def test_unknown_format_rejected(self, result):
        state = result.rollup.state_dict()
        state["format"] = 99
        with pytest.raises(ValueError, match="format"):
            FleetRollup.from_state(state)

    def test_foreign_bucket_layout_rejected(self, result):
        state = result.rollup.state_dict()
        state["savings_buckets_j"] = [1.0, 2.0]
        with pytest.raises(ValueError, match="buckets"):
            FleetRollup.from_state(state)

    def test_wrong_histogram_width_rejected(self, result):
        state = result.rollup.state_dict()
        state["savings_hist"] = [0, 1]
        with pytest.raises(ValueError, match="buckets"):
            FleetRollup.from_state(state)


class TestSpill:
    def test_round_trips_summaries_exactly(self, result, tmp_path):
        spill = SummarySpill(tmp_path / "summaries.jsonl")
        for summary in result.summaries:
            spill.append(summary)
        path = spill.close()
        assert read_spilled(path) == result.summaries
        assert tuple(iter_spilled(path)) == result.summaries
        assert spill.count == len(result.summaries)

    def test_publish_is_atomic(self, result, tmp_path):
        spill = SummarySpill(tmp_path / "summaries.jsonl")
        spill.append(result.summaries[0])
        # Nothing visible at the target path until close() renames.
        assert not (tmp_path / "summaries.jsonl").exists()
        spill.close()
        assert [p.name for p in tmp_path.iterdir()] == ["summaries.jsonl"]

    def test_abort_leaves_nothing_behind(self, result, tmp_path):
        spill = SummarySpill(tmp_path / "summaries.jsonl")
        spill.append(result.summaries[0])
        spill.abort()
        assert list(tmp_path.iterdir()) == []

    def test_append_bumps_the_spill_counter(self, result, tmp_path):
        with telemetry.isolated() as (reg, _):
            spill = SummarySpill(tmp_path / "summaries.jsonl")
            for summary in result.summaries:
                spill.append(summary)
            spill.close()
            counters = reg.snapshot()["counters"]
        assert counters["fleet.summaries_spilled"] == len(result.summaries)
