"""OnlineNetMaster checkpoint hardening: strict errors, lenient salvage."""

from __future__ import annotations

import json

import pytest

from repro.stream import CheckpointError, OnlineNetMaster, load_checkpoint, stream_trace


@pytest.fixture()
def payload(volunteer):
    engine = OnlineNetMaster(volunteer.user_id, train_days=10)
    for record in stream_trace(volunteer):
        engine.observe(record)
        engine.drain()
    return engine.to_json()


class TestStrict:
    def test_clean_checkpoint_loads_ok(self, payload):
        load = load_checkpoint(payload)
        assert load.ok and not load.salvaged
        assert load.engine.events > 0

    def test_truncated_json_raises_checkpoint_error(self, payload):
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            load_checkpoint(payload[: len(payload) // 2])

    def test_unknown_format_raises_checkpoint_error(self, payload):
        doc = json.loads(payload)
        doc["format"] = 999
        with pytest.raises(CheckpointError, match="format"):
            load_checkpoint(json.dumps(doc))

    def test_checkpoint_error_is_a_value_error(self):
        # Pre-hardening callers caught ValueError; they must keep working.
        assert issubclass(CheckpointError, ValueError)

    def test_from_json_never_leaks_json_decode_error(self):
        with pytest.raises(CheckpointError):
            OnlineNetMaster.from_json("{not json")


class TestLenient:
    def test_truncated_json_reports_instead_of_raising(self, payload):
        load = load_checkpoint(payload[: len(payload) // 2], strict=False)
        assert load.engine is None
        assert not load.ok
        assert any("truncated or corrupt" in issue for issue in load.issues)

    def test_corrupt_day_buffer_is_dropped_and_reported(self, payload):
        doc = json.loads(payload)
        day_key = next(iter(doc["buffers"]), None)
        if day_key is None:
            doc["buffers"]["0"] = {}
            day_key = "0"
        doc["buffers"][day_key] = {"sessions": "not-a-list"}
        load = load_checkpoint(json.dumps(doc), strict=False)
        assert load.salvaged
        assert any(f"day buffer '{day_key}'" in issue for issue in load.issues)

    def test_broken_breaker_salvages_fresh_breaker(self, payload):
        doc = json.loads(payload)
        doc["breaker"] = {"bogus": True}
        load = load_checkpoint(json.dumps(doc), strict=False)
        assert load.salvaged
        assert any("breaker" in issue for issue in load.issues)

    def test_broken_counter_defaults_and_reports(self, payload):
        doc = json.loads(payload)
        doc["events"] = "many"
        load = load_checkpoint(json.dumps(doc), strict=False)
        assert load.salvaged
        assert load.engine.events == 0
        assert any("'events'" in issue for issue in load.issues)

    def test_unusable_core_reports_nothing_salvageable(self, payload):
        doc = json.loads(payload)
        del doc["habits"]
        load = load_checkpoint(json.dumps(doc), strict=False)
        assert load.engine is None
        assert any("nothing salvageable" in issue for issue in load.issues)

    def test_salvaged_engine_keeps_streaming(self, volunteer, payload):
        doc = json.loads(payload)
        doc["breaker"] = {"bogus": True}
        load = load_checkpoint(json.dumps(doc), strict=False)
        engine = load.engine
        completed = engine.finish(volunteer.n_days)
        assert engine.day == volunteer.n_days
        assert isinstance(completed, list)
