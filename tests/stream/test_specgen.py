"""iter_fleet_specs: lazy cohorts byte-equal to the eager list."""

from __future__ import annotations

from itertools import islice

import pytest

from repro.stream import fleet_specs, iter_fleet_specs
from repro.stream.fleet import _spec_trace


class TestEquality:
    def test_matches_the_eager_list_spec_for_spec(self):
        eager = fleet_specs(seed=2014, n_users=20, n_days=5)
        lazy = list(iter_fleet_specs(seed=2014, n_users=20, n_days=5))
        assert lazy == eager

    def test_prefix_is_independent_of_cohort_size(self):
        # The SeedSequence stream-prefix property the generator leans on:
        # growing the cohort must never re-seed the users already drawn.
        small = list(iter_fleet_specs(seed=7, n_users=6, n_days=3))
        large = list(iter_fleet_specs(seed=7, n_users=40, n_days=3))
        assert large[: len(small)] == small

    def test_chunk_boundary_is_seamless(self, monkeypatch):
        import repro.stream.specgen as specgen

        reference = list(iter_fleet_specs(seed=3, n_users=11, n_days=2))
        monkeypatch.setattr(specgen, "_CHUNK", 4)
        chunked = list(iter_fleet_specs(seed=3, n_users=11, n_days=2))
        assert chunked == reference

    def test_specs_synthesize_identical_traces(self):
        spec = next(iter_fleet_specs(seed=2014, n_users=1, n_days=4))
        eager = fleet_specs(seed=2014, n_users=1, n_days=4)[0]
        a, b = _spec_trace(spec), _spec_trace(eager)
        assert a.user_id == b.user_id
        assert [(s.start, s.end) for s in a.screen_sessions] == [
            (s.start, s.end) for s in b.screen_sessions
        ]


class TestLaziness:
    def test_huge_cohorts_cost_nothing_until_drawn(self):
        source = iter_fleet_specs(seed=1, n_users=10**9, n_days=3)
        head = list(islice(source, 3))
        assert [s.user_id for s in head] == [
            "stream-0000", "stream-0001", "stream-0002"
        ]

    def test_zero_users_is_an_empty_stream(self):
        assert list(iter_fleet_specs(seed=1, n_users=0, n_days=3)) == []

    def test_negative_users_rejected(self):
        with pytest.raises(ValueError, match="n_users"):
            next(iter_fleet_specs(seed=1, n_users=-1, n_days=3))

    def test_prefix_and_weekday_are_threaded_through(self):
        spec = next(
            iter_fleet_specs(
                seed=1, n_users=1, n_days=3, user_prefix="u-", start_weekday=5
            )
        )
        assert spec.user_id == "u-0000"
        assert spec.start_weekday == 5
