"""Stream ingestion: chronological merges with bounded memory."""

from __future__ import annotations

import pytest

from repro.stream import (
    StreamEvent,
    event_time,
    merge_user_streams,
    stream_trace,
    stream_trace_jsonl,
)
from repro.traces import (
    AppUsage,
    NetworkActivity,
    ScreenSession,
    trace_to_jsonl,
)


class TestEventTime:
    def test_session_keyed_on_start(self):
        assert event_time(ScreenSession(100.0, 200.0)) == 100.0

    def test_usage_and_activity_keyed_on_time(self):
        assert event_time(AppUsage(5.0, "a", 1.0)) == 5.0
        assert event_time(NetworkActivity(7.0, "a", 1.0, 1.0, 1.0, False)) == 7.0


class TestStreamTrace:
    def test_complete_and_chronological(self, volunteer):
        records = list(stream_trace(volunteer))
        n_expected = (
            len(volunteer.screen_sessions)
            + len(volunteer.usages)
            + len(volunteer.activities)
        )
        assert len(records) == n_expected
        times = [event_time(r) for r in records]
        assert times == sorted(times)

    def test_tie_break_prefers_sessions_then_usages(self, tiny_trace):
        # Session and usage both start at t=100; merge stability puts the
        # session (earlier source) first.
        records = list(stream_trace(tiny_trace))
        at_100 = [r for r in records if event_time(r) == 100.0]
        assert isinstance(at_100[0], ScreenSession)
        assert isinstance(at_100[1], AppUsage)

    def test_is_lazy(self, volunteer):
        stream = stream_trace(volunteer)
        assert not isinstance(stream, (list, tuple))
        first = next(stream)
        assert event_time(first) <= event_time(next(stream))


class TestStreamTraceJsonl:
    def test_matches_in_memory_stream(self, volunteer, tmp_path):
        path = tmp_path / "vol.jsonl"
        trace_to_jsonl(volunteer, path)
        header, records = stream_trace_jsonl(path)
        assert header.user_id == volunteer.user_id
        assert header.n_days == volunteer.n_days
        assert header.start_weekday == volunteer.start_weekday
        streamed = list(records)
        expected = list(stream_trace(volunteer))
        assert len(streamed) == len(expected)
        assert [event_time(r) for r in streamed] == [event_time(r) for r in expected]
        assert [type(r).__name__ for r in streamed] == [
            type(r).__name__ for r in expected
        ]

    def test_lenient_skips_bad_lines(self, tiny_trace, tmp_path):
        path = tmp_path / "t.jsonl"
        trace_to_jsonl(tiny_trace, path)
        with path.open("a") as fh:
            fh.write("{not json}\n")
        with pytest.raises(ValueError):
            list(stream_trace_jsonl(path)[1])
        _, records = stream_trace_jsonl(path, lenient=True)
        assert len(list(records)) == len(list(stream_trace(tiny_trace)))


class TestMergeUserStreams:
    def test_chronological_and_tagged(self, volunteers):
        streams = {t.user_id: stream_trace(t) for t in volunteers}
        merged = list(merge_user_streams(streams))
        assert all(isinstance(e, StreamEvent) for e in merged)
        times = [e.time for e in merged]
        assert times == sorted(times)
        per_user = {t.user_id: 0 for t in volunteers}
        for e in merged:
            per_user[e.user_id] += 1
        for t in volunteers:
            assert per_user[t.user_id] == len(list(stream_trace(t)))

    def test_per_user_order_preserved(self, volunteers):
        streams = {t.user_id: stream_trace(t) for t in volunteers}
        seen: dict[str, float] = {}
        for e in merge_user_streams(streams):
            assert e.time >= seen.get(e.user_id, float("-inf"))
            seen[e.user_id] = e.time
