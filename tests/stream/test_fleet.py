"""FleetService: batching, shedding, checkpoint cadence, determinism."""

from __future__ import annotations

import pytest

from repro.core.netmaster import NetMasterConfig
from repro.stream import (
    FleetConfig,
    FleetService,
    FleetUserSpec,
    stream_one_user,
    stream_trace,
)
from repro.stream.fleet import _spec_trace

CONFIG = FleetConfig(
    train_days=10, netmaster=NetMasterConfig(enable_circuit_breaker=False)
)


def _specs(volunteers):
    return [
        FleetUserSpec(user_id=t.user_id, n_days=t.n_days, trace=t) for t in volunteers
    ]


class TestStreamOneUser:
    def test_summary_accounts_for_the_whole_trace(self, volunteer):
        summary = stream_one_user(volunteer, config=CONFIG)
        assert summary.user_id == volunteer.user_id
        assert summary.n_days == volunteer.n_days
        assert summary.days_executed == volunteer.n_days - CONFIG.train_days
        assert summary.events == len(list(stream_trace(volunteer)))
        assert summary.energy_j > 0
        assert summary.user_interactions > 0
        assert summary.checkpoints == 0  # cadence off by default

    def test_checkpoint_cadence(self, volunteer):
        config = FleetConfig(
            train_days=10,
            checkpoint_every_days=1,
            netmaster=CONFIG.netmaster,
        )
        summary = stream_one_user(volunteer, config=config)
        # Every executed day except the last (closed inside finish())
        # round-trips the engine through JSON.
        assert summary.checkpoints == summary.days_executed - 1

    def test_checkpointing_does_not_change_results(self, volunteer):
        plain = stream_one_user(volunteer, config=CONFIG)
        config = FleetConfig(
            train_days=10, checkpoint_every_days=1, netmaster=CONFIG.netmaster
        )
        ckpt = stream_one_user(volunteer, config=config)
        assert ckpt.energy_j == plain.energy_j
        assert ckpt.interrupts == plain.interrupts
        assert ckpt.radio_on_s == plain.radio_on_s

    def test_price_batch_depth_does_not_change_results(self, volunteer):
        # Depth 8 (default) prices through the columnar lane kernel,
        # depth 1 is the pre-lane-kernel per-day path: bit-identical.
        batched = stream_one_user(volunteer, config=CONFIG)
        per_day = stream_one_user(
            volunteer,
            config=FleetConfig(
                train_days=10, price_batch_days=1, netmaster=CONFIG.netmaster
            ),
        )
        assert batched == per_day

    def test_price_batching_composes_with_checkpoint_cadence(self, volunteer):
        # The pricing buffer must not starve or double-fire the
        # checkpoint trigger, and totals stay identical.
        kw = dict(
            train_days=10, checkpoint_every_days=2, netmaster=CONFIG.netmaster
        )
        batched = stream_one_user(volunteer, config=FleetConfig(**kw))
        per_day = stream_one_user(
            volunteer, config=FleetConfig(price_batch_days=1, **kw)
        )
        assert batched == per_day
        assert batched.checkpoints > 0

    def test_price_batch_days_validated(self):
        with pytest.raises(ValueError, match="price_batch_days"):
            FleetConfig(price_batch_days=0)


class TestFleetService:
    def test_runs_all_users_in_spec_order(self, volunteers):
        result = FleetService(CONFIG).run(_specs(volunteers))
        assert result.users == len(volunteers)
        assert result.shed_users == 0
        assert [s.user_id for s in result.summaries] == [
            t.user_id for t in volunteers
        ]
        assert result.user_days_streamed == sum(t.n_days for t in volunteers)
        assert result.events_per_s > 0

    def test_deterministic_across_runs(self, volunteers):
        a = FleetService(CONFIG).run(_specs(volunteers))
        b = FleetService(CONFIG).run(_specs(volunteers))
        assert a.summaries == b.summaries

    def test_batch_size_does_not_change_results(self, volunteers):
        wide = FleetService(CONFIG).run(_specs(volunteers))
        one = FleetService(
            FleetConfig(
                train_days=10, batch_size=1, netmaster=CONFIG.netmaster
            )
        ).run(_specs(volunteers))
        assert wide.summaries == one.summaries

    def test_price_batch_depth_does_not_change_fleet_results(self, volunteers):
        batched = FleetService(CONFIG).run(_specs(volunteers))
        per_day = FleetService(
            FleetConfig(
                train_days=10, price_batch_days=1, netmaster=CONFIG.netmaster
            )
        ).run(_specs(volunteers))
        assert batched.summaries == per_day.summaries

    def test_event_budget_sheds_remaining_users_whole(self, volunteers):
        config = FleetConfig(
            train_days=10,
            batch_size=1,
            event_budget=1,  # exhausted after the first user's batch
            netmaster=CONFIG.netmaster,
        )
        result = FleetService(config).run(_specs(volunteers))
        assert result.users == 1
        assert result.shed_users == len(volunteers) - 1
        # The admitted user was streamed completely, not truncated.
        assert result.summaries[0].n_days == volunteers[0].n_days

    def test_zero_budget_sheds_everyone(self, volunteers):
        config = FleetConfig(
            train_days=10, event_budget=0, netmaster=CONFIG.netmaster
        )
        result = FleetService(config).run(_specs(volunteers))
        assert result.users == 0
        assert result.shed_users == len(volunteers)
        assert result.events_per_s == 0.0


class TestIteratorSource:
    """Admission from a lazy iterator is byte-equal to the list drive."""

    def test_iterator_equals_list(self, volunteers):
        base = FleetService(CONFIG).run(_specs(volunteers))
        lazy = FleetService(CONFIG).run(iter(_specs(volunteers)))
        assert lazy.summaries == base.summaries
        assert lazy.rollup == base.rollup

    def test_iterator_equals_list_in_parallel(self, volunteers):
        base = FleetService(CONFIG).run(_specs(volunteers), jobs=2)
        lazy = FleetService(CONFIG).run(iter(_specs(volunteers)), jobs=2)
        assert lazy.summaries == base.summaries
        assert lazy.rollup == base.rollup

    def test_iterator_sheds_the_same_tail(self, volunteers):
        config = FleetConfig(
            train_days=10,
            batch_size=1,
            event_budget=1,
            netmaster=CONFIG.netmaster,
        )
        base = FleetService(config).run(_specs(volunteers))
        lazy = FleetService(config).run(iter(_specs(volunteers)))
        assert lazy.shed_users == base.shed_users == len(volunteers) - 1
        assert lazy.summaries == base.summaries
        assert lazy.rollup == base.rollup

    def test_generator_source_is_consumed_once(self, volunteers):
        specs = _specs(volunteers)
        source = (spec for spec in specs)
        result = FleetService(CONFIG).run(source)
        assert result.users == len(specs)
        assert list(source) == []  # fully drained


class TestSummaryRetention:
    def test_unretained_run_keeps_rollup_but_not_summaries(self, volunteers):
        config = FleetConfig(
            train_days=10, retain_summaries=False, netmaster=CONFIG.netmaster
        )
        base = FleetService(CONFIG).run(_specs(volunteers))
        lean = FleetService(config).run(_specs(volunteers))
        assert lean.rollup == base.rollup
        assert lean.users == base.users
        assert lean.events == base.events
        with pytest.raises(RuntimeError, match="neither retained nor spilled"):
            lean.summaries

    def test_spill_round_trips_the_summaries(self, volunteers, tmp_path):
        spill_path = tmp_path / "summaries.jsonl"
        config = FleetConfig(
            train_days=10,
            retain_summaries=False,
            summary_spill=spill_path,
            netmaster=CONFIG.netmaster,
        )
        base = FleetService(CONFIG).run(_specs(volunteers))
        spilled = FleetService(config).run(_specs(volunteers))
        assert spilled.spill_path == spill_path
        # .summaries lazily re-reads the spill file: same documents.
        assert spilled.summaries == base.summaries
        assert spilled.rollup.spilled == len(volunteers)

    def test_checkpoint_round_trips_an_unretained_run(self, volunteers, tmp_path):
        spill_path = tmp_path / "summaries.jsonl"
        config = FleetConfig(
            train_days=10,
            retain_summaries=False,
            summary_spill=spill_path,
            netmaster=CONFIG.netmaster,
        )
        result = FleetService(config).run(_specs(volunteers))
        path = tmp_path / "fleet.json"
        FleetService.checkpoint(path, result)
        loaded = FleetService.load_checkpoint(path)
        assert loaded.rollup == result.rollup
        assert loaded.summaries == result.summaries


class TestSpecs:
    def test_seeded_spec_synthesizes_deterministically(self):
        spec = FleetUserSpec(user_id="u1", n_days=3, seed=99)
        a, b = _spec_trace(spec), _spec_trace(spec)
        assert a.user_id == "u1" and a.n_days == 3
        assert [(s.start, s.end) for s in a.screen_sessions] == [
            (s.start, s.end) for s in b.screen_sessions
        ]

    def test_spec_without_trace_or_seed_rejected(self):
        with pytest.raises(ValueError, match="neither"):
            _spec_trace(FleetUserSpec(user_id="u", n_days=3))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"train_days": 0},
            {"batch_size": 0},
            {"event_budget": -1},
            {"checkpoint_every_days": 0},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            FleetConfig(**kwargs)
