"""OnlineHabitModel: bit-exact parity with the offline fit."""

from __future__ import annotations

import json

import pytest

from repro._util import DAY, HOUR
from repro.habits import HabitModel, habit_models_equal
from repro.stream import OnlineHabitModel, event_time, stream_trace
from repro.traces import NetworkActivity, ScreenSession


def _streamed(trace, **kwargs) -> OnlineHabitModel:
    online = OnlineHabitModel(
        trace.user_id, start_weekday=trace.start_weekday, **kwargs
    )
    online.observe_many(stream_trace(trace))
    online.close_through(trace.n_days)
    return online


class TestBitExactParity:
    def test_matches_offline_fit(self, volunteers):
        for trace in volunteers:
            online = _streamed(trace)
            assert habit_models_equal(online.to_model(), HabitModel.fit(trace))

    def test_registry_matches(self, volunteer):
        online = _streamed(volunteer)
        assert online.registry() == HabitModel.fit(volunteer).special_apps

    def test_parity_survives_state_round_trip(self, volunteer):
        online = OnlineHabitModel(
            volunteer.user_id, start_weekday=volunteer.start_weekday
        )
        records = list(stream_trace(volunteer))
        cut = len(records) // 2
        online.observe_many(records[:cut])
        online.close_through(int(event_time(records[cut]) // DAY))
        restored = OnlineHabitModel.load_state(
            json.loads(json.dumps(online.state_dict()))
        )
        restored.observe_many(records[cut:])
        restored.close_through(volunteer.n_days)
        assert habit_models_equal(restored.to_model(), HabitModel.fit(volunteer))

    def test_state_round_trip_is_byte_identical(self, volunteer):
        online = _streamed(volunteer)
        payload = json.dumps(online.state_dict())
        restored = OnlineHabitModel.load_state(json.loads(payload))
        assert json.dumps(restored.state_dict()) == payload
        assert habit_models_equal(restored.to_model(), online.to_model())

    def test_causality_pending_days_excluded(self, volunteer):
        online = OnlineHabitModel(
            volunteer.user_id, start_weekday=volunteer.start_weekday
        )
        online.observe_many(stream_trace(volunteer))
        online.close_through(10)  # days 10.. remain pending
        assert online.n_weekdays + online.n_weekends == 10
        clipped = HabitModel.fit(_prefix(volunteer, 10))
        assert habit_models_equal(online.to_model(), clipped)


def _prefix(trace, n_days):
    """The first ``n_days`` of a trace, sessions clipped at the horizon."""
    horizon = n_days * DAY
    return type(trace)(
        user_id=trace.user_id,
        n_days=n_days,
        start_weekday=trace.start_weekday,
        screen_sessions=[
            ScreenSession(s.start, min(s.end, horizon))
            for s in trace.screen_sessions
            if s.start < horizon
        ],
        usages=[u for u in trace.usages if u.time < horizon],
        activities=[a for a in trace.activities if a.time < horizon],
    )


class TestRetentionModes:
    def test_window_keeps_only_recent_days(self):
        online = OnlineHabitModel("w", window_days=2)
        # Day 0: screen use in hour 1; days 1-2: hour 5.  All weekdays.
        for day, hour in ((0, 1), (1, 5), (2, 5)):
            online.observe(
                ScreenSession(day * DAY + hour * HOUR, day * DAY + hour * HOUR + 60.0)
            )
            online.close_day(day)
        probs = online.to_model().weekday_user_probs
        assert probs[1] == 0.0  # day 0 fell out of the window
        assert probs[5] == 1.0

    def test_decay_weights_recent_days_higher(self):
        online = OnlineHabitModel("d", decay=0.5)
        online.observe(ScreenSession(HOUR, HOUR + 60.0))  # day 0, hour 1
        online.close_day(0)
        online.observe(ScreenSession(DAY + 5 * HOUR, DAY + 5 * HOUR + 60.0))
        online.close_day(1)
        probs = online.to_model().weekday_user_probs
        assert probs[5] > probs[1] > 0.0

    def test_window_and_decay_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            OnlineHabitModel("x", window_days=3, decay=0.9)

    def test_invalid_decay_rejected(self):
        with pytest.raises(ValueError, match="decay"):
            OnlineHabitModel("x", decay=1.5)


class TestDrift:
    def test_out_of_profile_day_alerts(self):
        online = OnlineHabitModel("drift", drift_threshold=0.3)
        # Five habitual weekdays: screen on during hours 8-9 only.
        for day in range(4):
            online.observe(ScreenSession(day * DAY + 8 * HOUR, day * DAY + 10 * HOUR))
            assert online.close_day(day) <= 0.3
        assert online.drift_alerts == 0
        # Day 4 (a weekday): screen on for 16 completely different hours.
        online.observe(ScreenSession(4 * DAY + 10 * HOUR, 4 * DAY + 24 * HOUR - 1.0))
        assert online.close_day(4) > 0.3
        assert online.drift_alerts == 1

    def test_first_day_never_alerts(self):
        online = OnlineHabitModel("fresh", drift_threshold=0.0)
        online.observe(ScreenSession(0.0, 12 * HOUR))
        assert online.close_day(0) == 0.0
        assert online.drift_alerts == 0


class TestLifecycle:
    def test_days_close_strictly_in_order(self):
        online = OnlineHabitModel("o")
        online.close_day(0)
        with pytest.raises(ValueError, match="in order"):
            online.close_day(2)

    def test_frozen_scores_but_does_not_learn(self):
        online = OnlineHabitModel("f")
        online.observe(ScreenSession(8 * HOUR, 9 * HOUR))
        online.close_day(0)
        before = online.to_model()
        online.frozen = True
        online.observe(ScreenSession(DAY + 20 * HOUR, DAY + 21 * HOUR))
        online.close_day(1)
        assert habit_models_equal(online.to_model(), before)
        assert online.n_weekdays == 1

    def test_midnight_crossing_session_splits_across_days(self):
        online = OnlineHabitModel("m")
        online.observe(ScreenSession(DAY - 30.0, DAY + 30.0))
        online.close_day(0)
        day0 = online.to_model()
        assert day0.weekday_user_probs[23] == 1.0
        assert day0.weekday_screen_seconds[23] == 30.0
        online.close_day(1)
        day1 = online.to_model()
        assert day1.weekday_user_probs[0] == 0.5  # hour 0 used on day 1 only
        assert day1.weekday_screen_seconds[0] == 15.0

    def test_screen_on_activities_ignored_in_rows(self):
        online = OnlineHabitModel("s")
        online.observe(NetworkActivity(HOUR, "app", 100.0, 10.0, 2.0, True))
        online.observe(NetworkActivity(2 * HOUR, "app", 100.0, 10.0, 2.0, False))
        online.close_day(0)
        counts = online.to_model().weekday_net_counts
        assert counts[1] == 0.0 and counts[2] == 1.0
