"""OnlineNetMaster: causal decision parity and checkpoint/restore."""

from __future__ import annotations

import json

import pytest

from repro._util import DAY
from repro.core.netmaster import NetMaster, NetMasterConfig
from repro.stream import OnlineNetMaster, event_time, stream_trace
from repro.traces import ScreenSession, Trace

TRAIN_DAYS = 10

#: Breaker disabled so the offline reference (fresh middleware per day,
#: breaker state reset) matches the long-lived online engine exactly.
CONFIG = NetMasterConfig(enable_circuit_breaker=False)


def _clipped_prefix(trace: Trace, n_days: int) -> Trace:
    """The first ``n_days`` as the online engine saw them: sessions that
    cross the horizon are clipped, not dropped (unlike ``split_history``)."""
    horizon = n_days * DAY
    return Trace(
        user_id=trace.user_id,
        n_days=n_days,
        start_weekday=trace.start_weekday,
        screen_sessions=[
            ScreenSession(s.start, min(s.end, horizon))
            for s in trace.screen_sessions
            if s.start < horizon
        ],
        usages=[u for u in trace.usages if u.time < horizon],
        activities=[a for a in trace.activities if a.time < horizon],
    )


def _signature(execution):
    return (
        [
            (a.time, a.app, a.duration, a.total_bytes, a.screen_on)
            for a in execution.activities
        ],
        list(execution.activity_tails),
        list(execution.wake_windows),
        execution.interrupts,
        execution.user_interactions,
        execution.degraded,
    )


def _run_stream(trace, *, engine=None, checkpoint_at=None):
    """Stream a trace, optionally round-tripping through JSON at an
    event index; returns (engine, completed days in order)."""
    engine = engine or OnlineNetMaster(
        trace.user_id,
        config=CONFIG,
        start_weekday=trace.start_weekday,
        train_days=TRAIN_DAYS,
    )
    completed = []
    for i, record in enumerate(stream_trace(trace)):
        engine.observe(record)
        completed.extend(engine.drain())
        if checkpoint_at is not None and i == checkpoint_at:
            engine = OnlineNetMaster.from_json(engine.to_json())
    completed.extend(engine.finish(trace.n_days))
    return engine, completed


class TestDecisionParity:
    def test_every_day_matches_offline_training(self, volunteer):
        _, completed = _run_stream(volunteer)
        assert [c.day_index for c in completed] == list(
            range(TRAIN_DAYS, volunteer.n_days)
        )
        for c in completed:
            reference = NetMaster(CONFIG)
            reference.train(_clipped_prefix(volunteer, c.day_index))
            offline = reference.execute_day(volunteer.day_view(c.day_index))
            assert _signature(c.execution) == _signature(offline)

    def test_outcome_mirrors_execution(self, volunteer):
        _, completed = _run_stream(volunteer)
        c = completed[0]
        outcome = c.outcome()
        assert outcome.policy == "netmaster-online"
        assert outcome.activities == c.execution.activities
        assert outcome.interrupts == c.execution.interrupts
        assert (
            outcome.deferred
            == c.execution.deferred_to_slots + c.execution.duty_serviced
        )


class TestCheckpointRestore:
    @pytest.mark.parametrize("fraction", [0.55, 0.8])
    def test_mid_stream_restore_replays_identically(self, volunteer, fraction):
        records = list(stream_trace(volunteer))
        # Cut mid-stream, strictly after training so decisions exist on
        # both sides of the checkpoint.
        cut = next(
            i
            for i, r in enumerate(records)
            if event_time(r) >= fraction * volunteer.n_days * DAY
        )
        _, straight = _run_stream(volunteer)
        _, forked = _run_stream(volunteer, checkpoint_at=cut)
        assert [c.day_index for c in forked] == [c.day_index for c in straight]
        for a, b in zip(straight, forked):
            assert _signature(a.execution) == _signature(b.execution)

    def test_checkpoint_payload_round_trips_byte_identically(self, volunteer):
        engine, _ = _run_stream(volunteer)
        payload = engine.to_json()
        restored = OnlineNetMaster.from_json(payload)
        assert restored.to_json() == payload

    def test_restored_counters_match(self, volunteer):
        engine, _ = _run_stream(volunteer)
        restored = OnlineNetMaster.from_json(engine.to_json())
        assert restored.events == engine.events
        assert restored.days_executed == engine.days_executed
        assert restored.interrupts == engine.interrupts
        assert restored.day == engine.day

    def test_undrained_days_must_be_drained_first(self, volunteer):
        engine = OnlineNetMaster(
            volunteer.user_id,
            config=CONFIG,
            start_weekday=volunteer.start_weekday,
            train_days=TRAIN_DAYS,
        )
        engine.observe_many(stream_trace(volunteer))
        state = engine.state_dict()
        # The state is JSON-safe even with undrained days pending...
        json.dumps(state)
        # ...but the pending CompletedDays are deliberately not in it.
        restored = OnlineNetMaster.from_state(state)
        assert restored.drain() == []

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            OnlineNetMaster.from_state({"format": 99})


class TestStreamContract:
    def test_rejects_time_regression(self, volunteer):
        engine = OnlineNetMaster(volunteer.user_id, config=CONFIG)
        engine.observe(ScreenSession(1000.0, 1100.0))
        with pytest.raises(ValueError, match="backwards"):
            engine.observe(ScreenSession(500.0, 600.0))

    def test_training_days_produce_no_decisions(self, volunteer):
        engine = OnlineNetMaster(
            volunteer.user_id,
            config=CONFIG,
            start_weekday=volunteer.start_weekday,
            train_days=volunteer.n_days,
        )
        engine.observe_many(stream_trace(volunteer))
        assert engine.finish(volunteer.n_days) == []
        assert engine.days_executed == 0

    def test_drain_releases_memory(self, volunteer):
        _, completed = _run_stream(volunteer)
        assert completed  # decisions happened...
        engine, _ = _run_stream(volunteer)
        assert engine.drain() == []  # ...and were all drained

    def test_frozen_model_when_updates_disabled(self, volunteer):
        engine = OnlineNetMaster(
            volunteer.user_id,
            config=CONFIG,
            start_weekday=volunteer.start_weekday,
            train_days=TRAIN_DAYS,
            update_model=False,
        )
        engine.observe_many(stream_trace(volunteer))
        engine.finish(volunteer.n_days)
        assert engine.habits.frozen
        assert engine.habits.n_weekdays + engine.habits.n_weekends == TRAIN_DAYS
