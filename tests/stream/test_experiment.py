"""The ``python -m repro stream`` experiment, shrunk to a smoke size."""

from __future__ import annotations

import pytest

from repro.evaluation.reporting import format_stream, results_to_json
from repro.stream import fleet_specs, stream_experiment


@pytest.fixture(scope="module")
def result():
    return stream_experiment(
        n_users=3, n_days=9, train_days=7, checkpoint_every_days=1
    )


class TestStreamExperiment:
    def test_fleet_accounting(self, result):
        assert result.users_streamed == 3
        assert result.shed_users == 0
        assert result.user_days_streamed == 27
        assert result.days_executed == 3 * 2  # two post-training days each
        assert result.events > 0
        assert result.events_per_s > 0
        assert result.checkpoints > 0

    def test_energy_ordering_is_sane(self, result):
        # Both schedulers must beat always-on; savings are proper fractions.
        assert 0.0 < result.online_saving < 1.0
        assert 0.0 < result.offline_saving < 1.0
        assert result.online_energy_j < result.naive_energy_j
        assert result.offline_energy_j < result.naive_energy_j

    def test_causality_gap_is_small(self, result):
        # The online engine sees strictly less data than offline training;
        # on habitual synthetic users the gap should be marginal.
        assert abs(result.online_offline_gap) < 0.1

    def test_interrupt_ratios_bounded(self, result):
        assert 0.0 <= result.online_interrupt_ratio <= 1.0
        assert 0.0 <= result.offline_interrupt_ratio <= 1.0

    def test_runs_without_retained_summaries(self, result):
        # Every statistic reads off the O(1) FleetRollup counters, so a
        # constant-RSS fleet (no per-user summary list) must report the
        # identical numbers.
        lean = stream_experiment(
            n_users=3, n_days=9, train_days=7, checkpoint_every_days=1,
            retain_summaries=False,
        )
        assert lean.users_streamed == result.users_streamed
        assert lean.user_days_streamed == result.user_days_streamed
        assert lean.days_executed == result.days_executed
        assert lean.events == result.events
        assert lean.checkpoints == result.checkpoints
        assert lean.online_energy_j == result.online_energy_j
        assert lean.naive_energy_j == result.naive_energy_j
        assert lean.online_saving == result.online_saving
        assert lean.online_interrupt_ratio == result.online_interrupt_ratio
        assert lean.degraded_days == result.degraded_days
        assert lean.drift_alerts == result.drift_alerts

    def test_specs_are_deterministic(self):
        a = fleet_specs(seed=1, n_users=4, n_days=5)
        b = fleet_specs(seed=1, n_users=4, n_days=5)
        assert a == b
        assert len({s.seed for s in a}) == 4  # distinct personas

    def test_formatter_and_json_export(self, result):
        text = format_stream(result)
        assert "Streaming fleet" in text
        assert "online saving vs naive" in text
        export = results_to_json({"stream": result})
        headlines = export["experiments"]["stream"]["headlines"]
        labels = {h["label"] for h in headlines}
        assert "stream events per second" in labels
        assert all(h["paper"] is None for h in headlines)
