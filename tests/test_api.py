"""Public API smoke tests."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.habits",
            "repro.traces",
            "repro.radio",
            "repro.device",
            "repro.baselines",
            "repro.evaluation",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.{name}"

    def test_quickstart_flow(self):
        """The README quickstart, end to end on a tiny scale."""
        from repro import NetMaster, generate_volunteers
        from repro.evaluation import split_history

        trace = generate_volunteers(5, seed=1)[0]
        history, days = split_history(trace, 4)
        nm = NetMaster()
        nm.train(history)
        execution = nm.execute_day(days[0])
        assert len(execution.activities) == len(days[0].activities)
