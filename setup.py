"""Legacy setuptools shim.

The sandboxed environment ships setuptools 65.5 without the ``wheel``
package, so PEP 660 editable installs (``pip install -e .``) cannot build a
wheel offline.  This shim lets ``python setup.py develop`` (and plain
``pip install --no-build-isolation .``-style workflows that fall back to
setup.py) work; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
